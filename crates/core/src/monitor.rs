//! Continuous monitoring (§7's closing direction).
//!
//! "Looking ahead … continuous monitoring of their footprint and related
//! traffic flows is crucial not just for compliance reasons but also to
//! understand how IoT is changing the Internet." This module turns the
//! one-shot discovery pipeline into a longitudinal monitor: successive
//! study windows are compared per provider, producing churn rates, growth
//! trends, and alerts when a backend's regional footprint changes (a new
//! country appearing — or one disappearing — is exactly what a GDPR
//! compliance monitor needs to notice).

use crate::discovery::DiscoveryResult;
use crate::footprint::Footprint;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::net::IpAddr;

/// One provider's state captured at one monitoring window.
#[derive(Debug, Clone)]
pub struct ProviderSnapshot {
    pub ips: HashSet<IpAddr>,
    pub countries: BTreeSet<String>,
    pub locations: usize,
}

/// A labelled monitoring window (e.g. `"2021-12"`, `"2022-02"`).
#[derive(Debug, Clone)]
pub struct MonitoringWindow {
    pub label: String,
    pub per_provider: BTreeMap<String, ProviderSnapshot>,
}

impl MonitoringWindow {
    /// Capture a window from a discovery result and its footprints.
    pub fn capture(
        label: &str,
        discovery: &DiscoveryResult,
        footprints: &BTreeMap<String, Footprint>,
    ) -> MonitoringWindow {
        let mut per_provider = BTreeMap::new();
        for (name, disc) in discovery.per_provider() {
            let fp = footprints.get(name);
            per_provider.insert(
                name.to_string(),
                ProviderSnapshot {
                    ips: disc.ips.keys().copied().collect(),
                    countries: fp.map(|f| f.countries()).unwrap_or_default(),
                    locations: fp.map(|f| f.location_count()).unwrap_or(0),
                },
            );
        }
        MonitoringWindow {
            label: label.to_string(),
            per_provider,
        }
    }
}

/// Severity-ordered finding kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TrendKind {
    /// The backend now has gateways in a country it did not before —
    /// relevant to data-sovereignty compliance.
    CountryAdded,
    /// A country disappeared from the footprint.
    CountryRemoved,
    /// The IP set grew or shrank beyond the threshold.
    SizeShift,
    /// Routine churn below the alert threshold.
    Churn,
}

/// One monitoring finding.
#[derive(Debug, Clone)]
pub struct TrendFinding {
    pub provider: String,
    pub kind: TrendKind,
    pub detail: String,
}

/// The longitudinal monitor.
#[derive(Debug, Default)]
pub struct Monitor {
    windows: Vec<MonitoringWindow>,
    /// Relative IP-set size change that triggers a `SizeShift` finding.
    pub size_shift_threshold: f64,
}

impl Monitor {
    /// Monitor with a 20% size-shift alert threshold.
    pub fn new() -> Self {
        Monitor {
            windows: Vec::new(),
            size_shift_threshold: 0.2,
        }
    }

    /// Append a window (windows are compared in insertion order).
    pub fn push(&mut self, window: MonitoringWindow) {
        self.windows.push(window);
    }

    /// Number of captured windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no windows have been captured.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Compare the two most recent windows and report findings, sorted by
    /// severity.
    pub fn latest_findings(&self) -> Vec<TrendFinding> {
        let n = self.windows.len();
        if n < 2 {
            return Vec::new();
        }
        self.compare(&self.windows[n - 2], &self.windows[n - 1])
    }

    fn compare(&self, prev: &MonitoringWindow, curr: &MonitoringWindow) -> Vec<TrendFinding> {
        let mut findings = Vec::new();
        for (name, now) in &curr.per_provider {
            let Some(before) = prev.per_provider.get(name) else {
                continue;
            };
            // Country-level footprint changes.
            for added in now.countries.difference(&before.countries) {
                findings.push(TrendFinding {
                    provider: name.clone(),
                    kind: TrendKind::CountryAdded,
                    detail: format!(
                        "gateways now present in {added} ({} → {})",
                        prev.label, curr.label
                    ),
                });
            }
            for removed in before.countries.difference(&now.countries) {
                findings.push(TrendFinding {
                    provider: name.clone(),
                    kind: TrendKind::CountryRemoved,
                    detail: format!(
                        "no gateways left in {removed} ({} → {})",
                        prev.label, curr.label
                    ),
                });
            }
            // Size trends.
            let b = before.ips.len().max(1) as f64;
            let shift = now.ips.len() as f64 / b - 1.0;
            let stable = before.ips.intersection(&now.ips).count();
            let churn = 1.0 - stable as f64 / before.ips.union(&now.ips).count().max(1) as f64;
            if shift.abs() > self.size_shift_threshold {
                findings.push(TrendFinding {
                    provider: name.clone(),
                    kind: TrendKind::SizeShift,
                    detail: format!(
                        "IP set {} by {:.0}% ({} → {})",
                        if shift > 0.0 { "grew" } else { "shrank" },
                        shift.abs() * 100.0,
                        before.ips.len(),
                        now.ips.len()
                    ),
                });
            } else if churn > 0.0 {
                findings.push(TrendFinding {
                    provider: name.clone(),
                    kind: TrendKind::Churn,
                    detail: format!("{:.1}% membership churn", churn * 100.0),
                });
            }
        }
        findings.sort_by(|a, b| a.kind.cmp(&b.kind).then(a.provider.cmp(&b.provider)));
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(ips: &[&str], countries: &[&str]) -> ProviderSnapshot {
        ProviderSnapshot {
            ips: ips.iter().map(|s| s.parse().unwrap()).collect(),
            countries: countries.iter().map(|s| s.to_string()).collect(),
            locations: countries.len(),
        }
    }

    fn window(label: &str, providers: &[(&str, ProviderSnapshot)]) -> MonitoringWindow {
        MonitoringWindow {
            label: label.to_string(),
            per_provider: providers
                .iter()
                .map(|(n, s)| (n.to_string(), s.clone()))
                .collect(),
        }
    }

    #[test]
    fn no_findings_with_fewer_than_two_windows() {
        let mut m = Monitor::new();
        assert!(m.latest_findings().is_empty());
        m.push(window("w1", &[("x", snapshot(&["10.0.0.1"], &["DE"]))]));
        assert!(m.latest_findings().is_empty());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn country_changes_are_flagged_first() {
        let mut m = Monitor::new();
        m.push(window("dec", &[("x", snapshot(&["10.0.0.1"], &["DE"]))]));
        m.push(window(
            "feb",
            &[("x", snapshot(&["10.0.0.1", "10.0.0.2"], &["DE", "CN"]))],
        ));
        let findings = m.latest_findings();
        assert!(!findings.is_empty());
        assert_eq!(findings[0].kind, TrendKind::CountryAdded);
        assert!(findings[0].detail.contains("CN"));
        // The 2x size growth is also flagged.
        assert!(findings.iter().any(|f| f.kind == TrendKind::SizeShift));
    }

    #[test]
    fn country_removal_flagged() {
        let mut m = Monitor::new();
        m.push(window(
            "w1",
            &[("x", snapshot(&["10.0.0.1"], &["DE", "US"]))],
        ));
        m.push(window("w2", &[("x", snapshot(&["10.0.0.1"], &["DE"]))]));
        let findings = m.latest_findings();
        assert!(findings
            .iter()
            .any(|f| f.kind == TrendKind::CountryRemoved && f.detail.contains("US")));
    }

    #[test]
    fn small_churn_reported_quietly() {
        let mut m = Monitor::new();
        m.push(window(
            "w1",
            &[(
                "x",
                snapshot(
                    &["10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4", "10.0.0.5"],
                    &["DE"],
                ),
            )],
        ));
        m.push(window(
            "w2",
            &[(
                "x",
                snapshot(
                    &["10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4", "10.0.0.6"],
                    &["DE"],
                ),
            )],
        ));
        let findings = m.latest_findings();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, TrendKind::Churn);
    }

    #[test]
    fn stable_provider_with_identical_sets_yields_nothing() {
        let mut m = Monitor::new();
        let snap = snapshot(&["10.0.0.1"], &["DE"]);
        m.push(window("w1", &[("x", snap.clone())]));
        m.push(window("w2", &[("x", snap)]));
        assert!(m.latest_findings().is_empty());
    }

    #[test]
    fn providers_missing_from_previous_window_are_skipped() {
        let mut m = Monitor::new();
        m.push(window("w1", &[]));
        m.push(window("w2", &[("new", snapshot(&["10.0.0.1"], &["DE"]))]));
        assert!(m.latest_findings().is_empty());
    }
}
