//! Potential-disruption audits (§6.2): BGP incidents and blocklists.

use crate::discovery::DiscoveryResult;
use crate::sources::DataSources;
use iotmap_nettypes::interval::IntervalSet;
use iotmap_nettypes::{Asn, Ipv4Prefix};
use std::collections::{BTreeMap, HashSet};
use std::net::IpAddr;

/// Kind of a routing incident, as reported by a BGPStream-like service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    Leak,
    PossibleHijack,
    AsOutage,
}

/// One routing incident record (the shape BGPStream exports).
#[derive(Debug, Clone)]
pub struct RouteIncident {
    pub kind: IncidentKind,
    pub prefix: Option<Ipv4Prefix>,
    pub asn: Asn,
}

/// Result of checking incidents against the discovered backends.
#[derive(Debug, Clone, Default)]
pub struct IncidentAudit {
    pub total_incidents: usize,
    /// Incidents whose prefix covers (or is covered by) a backend IP.
    pub prefix_hits: usize,
    /// Incidents whose AS hosts backend IPs.
    pub asn_hits: usize,
}

impl IncidentAudit {
    /// Check all incidents against all discovered IPs and their origin
    /// ASes. The paper found zero hits across 10 leaks, 40 hijacks and
    /// 166 AS outages.
    pub fn run(
        incidents: &[RouteIncident],
        discovery: &DiscoveryResult,
        sources: &DataSources<'_>,
    ) -> IncidentAudit {
        let all_ips: Vec<IpAddr> = discovery.all_ips().into_iter().collect();
        let backend_asns: HashSet<Asn> = all_ips
            .iter()
            .filter_map(|&ip| sources.routeviews.origin(ip).map(|o| o.asn))
            .collect();

        let mut audit = IncidentAudit {
            total_incidents: incidents.len(),
            ..Default::default()
        };
        for incident in incidents {
            if let Some(prefix) = &incident.prefix {
                let hit = all_ips.iter().any(|ip| match ip {
                    IpAddr::V4(a) => prefix.contains(*a),
                    IpAddr::V6(_) => false,
                });
                if hit {
                    audit.prefix_hits += 1;
                }
            }
            if backend_asns.contains(&incident.asn) {
                audit.asn_hits += 1;
            }
        }
        audit
    }

    /// No backend was affected.
    pub fn all_clear(&self) -> bool {
        self.prefix_hits == 0 && self.asn_hits == 0
    }
}

/// One blocklisted backend IP.
#[derive(Debug, Clone)]
pub struct BlocklistFinding {
    pub provider: String,
    pub ip: IpAddr,
    /// Source-list categories, when the aggregate publishes them.
    pub categories: Vec<String>,
}

/// Result of intersecting discovered backends with a FireHOL-style
/// aggregate blocklist.
#[derive(Debug, Clone, Default)]
pub struct BlocklistAudit {
    pub findings: Vec<BlocklistFinding>,
}

impl BlocklistAudit {
    /// Intersect every discovered IPv4 backend with the aggregate.
    /// `categories` maps listed IPs to their source-list labels (public
    /// information from the individual lists).
    pub fn run(
        discovery: &DiscoveryResult,
        aggregate: &IntervalSet,
        categories: &BTreeMap<IpAddr, Vec<String>>,
    ) -> BlocklistAudit {
        let mut findings = Vec::new();
        for (provider, disc) in discovery.per_provider() {
            for &ip in disc.ips.keys() {
                if let IpAddr::V4(a) = ip {
                    if aggregate.contains_v4(a) {
                        findings.push(BlocklistFinding {
                            provider: provider.to_string(),
                            ip,
                            categories: categories.get(&ip).cloned().unwrap_or_default(),
                        });
                    }
                }
            }
        }
        findings.sort_by(|a, b| (&a.provider, a.ip).cmp(&(&b.provider, b.ip)));
        BlocklistAudit { findings }
    }

    /// Listed-IP count per provider (the §6.2 tally).
    pub fn per_provider(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for f in &self.findings {
            *out.entry(f.provider.clone()).or_default() += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::{IpEvidence, ProviderDiscovery};
    use iotmap_dns::{PassiveDnsDb, ZoneDb};
    use iotmap_nettypes::{BgpOrigin, BgpTable};

    fn discovery(ips: &[(&str, &str)]) -> DiscoveryResult {
        // Build through the public-ish surface: construct providers and
        // plant evidence.
        let mut result = DiscoveryResult::default();
        let mut providers: BTreeMap<&str, ProviderDiscovery> = BTreeMap::new();
        for (prov, ip) in ips {
            providers
                .entry(prov)
                .or_insert_with(|| ProviderDiscovery {
                    name: prov.to_string(),
                    ..Default::default()
                })
                .ips
                .insert(ip.parse().unwrap(), IpEvidence::default());
        }
        for (_, p) in providers {
            result_push(&mut result, p);
        }
        result
    }

    // DiscoveryResult's fields are private; tests use a helper in this
    // crate via the testing-only constructor below.
    fn result_push(result: &mut DiscoveryResult, p: ProviderDiscovery) {
        *result = DiscoveryResult::from_providers(
            result
                .per_provider()
                .map(|(_, d)| clone_provider(d))
                .chain(std::iter::once(p))
                .collect(),
        );
    }

    fn clone_provider(d: &ProviderDiscovery) -> ProviderDiscovery {
        ProviderDiscovery {
            name: d.name.clone(),
            ips: d.ips.clone(),
            domains: d.domains.clone(),
        }
    }

    fn sources<'a>(
        bgp: &'a BgpTable,
        pdns: &'a PassiveDnsDb,
        zones: &'a ZoneDb,
    ) -> DataSources<'a> {
        DataSources {
            censys: &[],
            zgrab_v6: &[],
            passive_dns: pdns,
            zones,
            routeviews: bgp,
            latency: None,
        }
    }

    #[test]
    fn incident_audit_all_clear() {
        let disc = discovery(&[("amazon", "52.0.0.1")]);
        let mut bgp = BgpTable::new();
        bgp.announce_v4(
            "52.0.0.0/13".parse().unwrap(),
            BgpOrigin {
                asn: Asn(14618),
                org: "Amazon Web Services".into(),
                location_label: String::new(),
                location: None,
            },
        );
        let pdns = PassiveDnsDb::new();
        let zones = ZoneDb::new();
        let s = sources(&bgp, &pdns, &zones);
        let incidents = vec![
            RouteIncident {
                kind: IncidentKind::Leak,
                prefix: Some("130.0.0.0/16".parse().unwrap()),
                asn: Asn(55555),
            },
            RouteIncident {
                kind: IncidentKind::AsOutage,
                prefix: None,
                asn: Asn(55556),
            },
        ];
        let audit = IncidentAudit::run(&incidents, &disc, &s);
        assert_eq!(audit.total_incidents, 2);
        assert!(audit.all_clear());
    }

    #[test]
    fn incident_audit_detects_hits() {
        let disc = discovery(&[("amazon", "52.0.0.1")]);
        let mut bgp = BgpTable::new();
        bgp.announce_v4(
            "52.0.0.0/13".parse().unwrap(),
            BgpOrigin {
                asn: Asn(14618),
                org: "Amazon Web Services".into(),
                location_label: String::new(),
                location: None,
            },
        );
        let pdns = PassiveDnsDb::new();
        let zones = ZoneDb::new();
        let s = sources(&bgp, &pdns, &zones);
        let incidents = vec![
            RouteIncident {
                kind: IncidentKind::PossibleHijack,
                prefix: Some("52.0.0.0/24".parse().unwrap()),
                asn: Asn(666),
            },
            RouteIncident {
                kind: IncidentKind::AsOutage,
                prefix: None,
                asn: Asn(14618),
            },
        ];
        let audit = IncidentAudit::run(&incidents, &disc, &s);
        assert_eq!(audit.prefix_hits, 1);
        assert_eq!(audit.asn_hits, 1);
        assert!(!audit.all_clear());
    }

    #[test]
    fn blocklist_audit_finds_planted_ips() {
        let disc = discovery(&[
            ("baidu", "60.1.0.5"),
            ("baidu", "60.1.0.6"),
            ("sap", "40.0.0.9"),
        ]);
        let mut agg = IntervalSet::new();
        agg.insert(u32::from("60.1.0.5".parse::<std::net::Ipv4Addr>().unwrap()) as u64);
        agg.insert(u32::from("40.0.0.9".parse::<std::net::Ipv4Addr>().unwrap()) as u64);
        let mut cats = BTreeMap::new();
        cats.insert("60.1.0.5".parse().unwrap(), vec!["open-proxy".to_string()]);
        let audit = BlocklistAudit::run(&disc, &agg, &cats);
        assert_eq!(audit.findings.len(), 2);
        let per = audit.per_provider();
        assert_eq!(per["baidu"], 1);
        assert_eq!(per["sap"], 1);
        assert_eq!(audit.findings[0].categories, vec!["open-proxy"]);
    }
}
