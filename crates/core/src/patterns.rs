//! The domain-pattern registry (§3.2 + Appendix A).
//!
//! For each of the sixteen IoT backend providers, the paper distils the
//! publicly documented `<subdomain>.<region>.<second-level-domain>` naming
//! scheme into regular expressions — one form for DNSDB owner names (FQDN
//! presentation, trailing dot) and one for certificate names (no trailing
//! dot, `*.` wildcards allowed). [`PatternRegistry::paper_defaults`] is
//! that distillation for the synthetic world's documentation; the structure
//! (and the regex dialect) is exactly the paper's.

use iotmap_dregex::Regex;
use iotmap_nettypes::{DomainName, Error, PortProto};

/// Where in a matched name the region code sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionHint {
    /// The code is the Nth label counting from the right (0 = TLD).
    LabelFromRight(usize),
    /// The naming scheme carries no location information.
    None,
}

impl RegionHint {
    /// Extract the region code from a (possibly wildcard) domain name.
    pub fn extract(&self, name: &str) -> Option<String> {
        match self {
            RegionHint::None => None,
            RegionHint::LabelFromRight(n) => {
                let trimmed = name.trim_end_matches('.');
                let labels: Vec<&str> = trimmed.split('.').collect();
                if labels.len() <= *n {
                    return None;
                }
                let code = labels[labels.len() - 1 - n];
                if code == "*" || code.is_empty() {
                    None
                } else {
                    Some(code.to_string())
                }
            }
        }
    }
}

/// A documented protocol/port pair (the Table 1 "Protocols (Ports)"
/// column).
#[derive(Debug, Clone, Copy)]
pub struct DocumentedPort {
    pub protocol: &'static str,
    pub port: PortProto,
}

/// The compiled patterns and documentation facts for one provider.
#[derive(Debug)]
pub struct ProviderPatterns {
    /// Canonical key (`"amazon"`, …).
    pub name: &'static str,
    /// Display name as in Table 1.
    pub display: &'static str,
    /// Pattern over DNSDB owner names (presentation form, trailing dot).
    pub owner_regex: Regex,
    /// Pattern over certificate names (no trailing dot).
    pub san_regex: Regex,
    /// Where region codes sit in matched names.
    pub region_hint: RegionHint,
    /// Documented protocol/port matrix.
    pub ports: Vec<DocumentedPort>,
    /// Documentation states an anycast front is in use.
    pub documented_anycast: bool,
}

impl ProviderPatterns {
    /// Compile a provider's patterns, failing with [`Error::Pattern`]
    /// instead of panicking when a regex does not compile.
    pub fn try_new(
        name: &'static str,
        display: &'static str,
        owner_pattern: &str,
        san_pattern: &str,
        region_hint: RegionHint,
        ports: Vec<DocumentedPort>,
        documented_anycast: bool,
    ) -> Result<Self, Error> {
        Ok(ProviderPatterns {
            name,
            display,
            owner_regex: Regex::with_options(owner_pattern, true)
                .map_err(|e| Error::pattern(name, format!("owner pattern: {e}")))?,
            san_regex: Regex::with_options(san_pattern, true)
                .map_err(|e| Error::pattern(name, format!("SAN pattern: {e}")))?,
            region_hint,
            ports,
            documented_anycast,
        })
    }

    /// Does a DNS owner name (any presentation) match this provider?
    pub fn matches_owner(&self, owner: &DomainName) -> bool {
        self.owner_regex.is_match(&owner.fqdn())
    }

    /// Does a certificate name match this provider?
    pub fn matches_san(&self, san: &str) -> bool {
        self.san_regex.is_match(san)
    }
}

/// The registry of all sixteen providers' patterns.
#[derive(Debug)]
pub struct PatternRegistry {
    providers: Vec<ProviderPatterns>,
}

fn tcp(proto: &'static str, port: u16) -> DocumentedPort {
    DocumentedPort {
        protocol: proto,
        port: PortProto::tcp(port),
    }
}

fn udp(proto: &'static str, port: u16) -> DocumentedPort {
    DocumentedPort {
        protocol: proto,
        port: PortProto::udp(port),
    }
}

impl PatternRegistry {
    /// Wrap an explicit pattern list.
    pub fn new(providers: Vec<ProviderPatterns>) -> Self {
        PatternRegistry { providers }
    }

    /// The registry distilled from the providers' public documentation —
    /// the analogue of the paper's Appendix A table. Panics on a broken
    /// built-in pattern (a bug, not an input error); fallible callers
    /// should use [`PatternRegistry::try_paper_defaults`].
    pub fn paper_defaults() -> Self {
        Self::try_paper_defaults().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`PatternRegistry::paper_defaults`], returning
    /// [`Error::Pattern`] if any provider's regex fails to compile.
    pub fn try_paper_defaults() -> Result<Self, Error> {
        let region2 = RegionHint::LabelFromRight(2);
        let providers = vec![
            ProviderPatterns::try_new(
                "alibaba",
                "Alibaba IoT",
                r"(.+)\.(iot-as-mqtt|iot-as-http|iot-amqp)\.([[:alnum:]]+(-[[:alnum:]]+)*)\.aliyuncs\.com\.$",
                r"(.+)\.(iot-as-mqtt|iot-as-http|iot-amqp)\.([[:alnum:]]+(-[[:alnum:]]+)*)\.aliyuncs\.com$",
                region2,
                vec![tcp("MQTT", 1883), tcp("HTTPS", 443), udp("CoAP", 5682)],
                false,
            )?,
            ProviderPatterns::try_new(
                "amazon",
                "Amazon IoT",
                r"(.+)(\.iot\.)([[:alnum:]]+(-[[:alnum:]]+)+)(\.amazonaws\.com\.$)",
                r"(.+)(\.iot\.)([[:alnum:]]+(-[[:alnum:]]+)+)(\.amazonaws\.com$)",
                region2,
                vec![
                    tcp("MQTT", 8883),
                    tcp("MQTT", 443),
                    tcp("HTTPS", 443),
                    tcp("HTTPS", 8443),
                ],
                true, // Global Accelerator
            )?,
            ProviderPatterns::try_new(
                "baidu",
                "Baidu IoT",
                r"(.+)\.(iot\.)([[:alnum:]]+(-[[:alnum:]]+)*)\.(baidubce\.com\.$)",
                r"(.+)\.(iot\.)([[:alnum:]]+(-[[:alnum:]]+)*)\.(baidubce\.com$)",
                region2,
                vec![
                    tcp("MQTT", 1883),
                    tcp("MQTT", 1884),
                    tcp("MQTT", 443),
                    tcp("HTTP", 80),
                    tcp("HTTPS", 443),
                    udp("CoAP", 5682),
                    udp("CoAP", 5683),
                ],
                false,
            )?,
            ProviderPatterns::try_new(
                "bosch",
                "Bosch IoT Hub",
                r"(.+\.|^)(bosch-iot-hub\.com\.$)",
                r"(.+\.|^)(bosch-iot-hub\.com$)",
                RegionHint::None,
                vec![
                    tcp("MQTT", 8883),
                    tcp("HTTPS", 443),
                    tcp("AMQP", 5671),
                    udp("CoAP", 5684),
                ],
                false,
            )?,
            ProviderPatterns::try_new(
                "cisco",
                "Cisco Kinetic",
                r"(.+\.|^)(ciscokinetic\.io\.$)",
                r"(.+\.|^)(ciscokinetic\.io$)",
                RegionHint::None,
                vec![
                    tcp("MQTT", 8883),
                    tcp("MQTT", 443),
                    tcp("TCP", 9123),
                    tcp("TCP", 9124),
                ],
                false,
            )?,
            ProviderPatterns::try_new(
                "fujitsu",
                "Fujitsu IoT",
                r"^(iot\.)([[:alnum:]]+(-[[:alnum:]]+)*)\.(paas\.cloud\.global\.fujitsu\.com\.$)",
                r"^(iot\.)([[:alnum:]]+(-[[:alnum:]]+)*)\.(paas\.cloud\.global\.fujitsu\.com$)",
                RegionHint::LabelFromRight(5),
                vec![tcp("MQTT", 8883), tcp("HTTPS", 443)],
                false,
            )?,
            ProviderPatterns::try_new(
                "google",
                "Google IoT Core",
                r"^(mqtt|cloudiotdevice)\.googleapis\.com\.$",
                r"^(mqtt|cloudiotdevice)\.googleapis\.com$",
                RegionHint::None,
                vec![tcp("MQTT", 8883), tcp("MQTT", 443), tcp("HTTPS", 443)],
                false,
            )?,
            ProviderPatterns::try_new(
                "huawei",
                "Huawei IoT",
                r"^(iot-mqtts|iot-https)\.([[:alnum:]]+(-[[:alnum:]]+)*)\.(myhuaweicloud\.com\.$)",
                r"^(iot-mqtts|iot-https)\.([[:alnum:]]+(-[[:alnum:]]+)*)\.(myhuaweicloud\.com$)",
                region2,
                vec![tcp("MQTT", 8883), tcp("MQTT", 443), tcp("HTTPS", 8943)],
                false,
            )?,
            ProviderPatterns::try_new(
                "ibm",
                "IBM IoT",
                r"(.+\.|^)(internetofthings\.ibmcloud\.com\.$)",
                r"(.+\.|^)(internetofthings\.ibmcloud\.com$)",
                RegionHint::None,
                vec![
                    tcp("MQTT", 8883),
                    tcp("MQTT", 1883),
                    tcp("HTTP", 80),
                    tcp("HTTPS", 443),
                ],
                false,
            )?,
            ProviderPatterns::try_new(
                "microsoft",
                "Microsoft Azure IoT Hub",
                r"(.+\.|^)(azure-devices\.net\.$)",
                r"(.+\.|^)(azure-devices\.net$)",
                RegionHint::None,
                vec![tcp("MQTT", 8883), tcp("HTTPS", 443), tcp("AMQP", 5671)],
                false,
            )?,
            ProviderPatterns::try_new(
                "oracle",
                "Oracle IoT",
                r"(.+\.|^)(iot\.)([[:alnum:]]+(-[[:alnum:]]+)*\.)?(oraclecloud\.com\.$)",
                r"(.+\.|^)(iot\.)([[:alnum:]]+(-[[:alnum:]]+)*\.)?(oraclecloud\.com$)",
                region2,
                vec![tcp("MQTT", 8883), tcp("HTTPS", 443)],
                false,
            )?,
            ProviderPatterns::try_new(
                "ptc",
                "PTC ThingWorx",
                r"(.+\.|^)(cloud\.thingworx\.com\.$)",
                r"(.+\.|^)(cloud\.thingworx\.com$)",
                RegionHint::None,
                vec![tcp("HTTPS", 443), tcp("MQTT", 8883), udp("UDP", 10010)],
                false,
            )?,
            ProviderPatterns::try_new(
                "sap",
                "SAP IoT",
                r"(.+\.|^)(iot\.sap\.$)",
                r"(.+\.|^)(iot\.sap$)",
                RegionHint::None,
                vec![tcp("MQTT", 8883), tcp("HTTPS", 443)],
                false,
            )?,
            ProviderPatterns::try_new(
                "siemens",
                "Siemens Mindsphere",
                r"(.+)\.(eu1|eu2|us1|cn1)\.(mindsphere\.io\.$)",
                r"(.+)\.(eu1|eu2|us1|cn1)\.(mindsphere\.io$)",
                region2,
                vec![
                    tcp("MQTT", 8883),
                    tcp("HTTPS", 443),
                    tcp("OPC-UA", 4840),
                    tcp("ActiveMQ", 61616),
                ],
                true,
            )?,
            ProviderPatterns::try_new(
                "sierra",
                "Sierra Wireless",
                r"^(na|ca|eu|ap)\.airvantage\.net\.$",
                r"^(na|ca|eu|ap)\.airvantage\.net$",
                region2,
                vec![
                    tcp("MQTT", 8883),
                    tcp("MQTT", 1883),
                    tcp("HTTP", 80),
                    tcp("HTTPS", 443),
                    udp("CoAP", 5686),
                ],
                false,
            )?,
            ProviderPatterns::try_new(
                "tencent",
                "Tencent IoT",
                r"(.+\.|^)(tencentdevices\.com\.$)",
                r"(.+\.|^)(tencentdevices\.com$)",
                RegionHint::None,
                vec![
                    tcp("MQTT", 8883),
                    tcp("MQTT", 1883),
                    tcp("HTTP", 80),
                    tcp("HTTPS", 443),
                    udp("CoAP", 5684),
                ],
                false,
            )?,
        ];
        Ok(PatternRegistry::new(providers))
    }

    /// All providers, alphabetical (registry order).
    pub fn providers(&self) -> &[ProviderPatterns] {
        &self.providers
    }

    /// Number of providers.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// True when the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }

    /// Find a provider by canonical name.
    pub fn get(&self, name: &str) -> Option<&ProviderPatterns> {
        self.providers.iter().find(|p| p.name == name)
    }

    /// Which provider (if any) claims a DNS owner name? First match wins;
    /// the patterns are mutually exclusive by construction.
    pub fn classify_owner(&self, owner: &DomainName) -> Option<&ProviderPatterns> {
        self.providers.iter().find(|p| p.matches_owner(owner))
    }

    /// Which provider (if any) claims a certificate name?
    pub fn classify_san(&self, san: &str) -> Option<&ProviderPatterns> {
        self.providers.iter().find(|p| p.matches_san(san))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> PatternRegistry {
        PatternRegistry::paper_defaults()
    }

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn sixteen_providers() {
        assert_eq!(registry().len(), 16);
    }

    #[test]
    fn owner_patterns_match_own_namespace() {
        let r = registry();
        let cases = [
            ("amazon", "t0a1b2c3d.iot.us-east-1.amazonaws.com"),
            (
                "alibaba",
                "t00ff00ff.iot-as-mqtt.cn-shanghai-a.aliyuncs.com",
            ),
            ("baidu", "tdeadbeef.iot.cn-north-1.baidubce.com"),
            ("bosch", "hub-00ab12.bosch-iot-hub.com"),
            ("cisco", "hub-123456.ciscokinetic.io"),
            ("fujitsu", "iot.jp-east-1.paas.cloud.global.fujitsu.com"),
            ("google", "mqtt.googleapis.com"),
            ("huawei", "iot-mqtts.cn-north-4.myhuaweicloud.com"),
            ("ibm", "hub-aabbcc.internetofthings.ibmcloud.com"),
            ("microsoft", "hub-112233.azure-devices.net"),
            ("oracle", "t01234567.iot.us-ashburn-1.oraclecloud.com"),
            ("ptc", "hub-445566.cloud.thingworx.com"),
            ("sap", "hub-778899.iot.sap"),
            ("siemens", "t334455.eu1.mindsphere.io"),
            ("sierra", "eu.airvantage.net"),
            ("tencent", "hub-665544.tencentdevices.com"),
        ];
        for (name, domain) in cases {
            let got = r.classify_owner(&d(domain));
            assert_eq!(
                got.map(|p| p.name),
                Some(name),
                "classification of {domain}"
            );
        }
    }

    #[test]
    fn patterns_reject_lookalikes() {
        let r = registry();
        for fake in [
            "azure-devices.net.evil.com",
            "xamazonaws.com",
            "tencentdevices.com.cn",
            "iot.sap.example.org",
            "mqtt.googleapis.com.attacker.net",
            "www.example.com",
        ] {
            assert!(
                r.classify_owner(&d(fake)).is_none(),
                "{fake} should not classify"
            );
        }
    }

    #[test]
    fn san_patterns_match_wildcards() {
        let r = registry();
        assert_eq!(
            r.classify_san("*.iot.eu-west-1.amazonaws.com")
                .map(|p| p.name),
            Some("amazon")
        );
        assert_eq!(
            r.classify_san("*.azure-devices.net").map(|p| p.name),
            Some("microsoft")
        );
        assert_eq!(r.classify_san("*.iot.sap").map(|p| p.name), Some("sap"));
        assert!(r.classify_san("*.google.com").is_none());
        assert!(r.classify_san("*.eu-central-1.aws-elb.example").is_none());
    }

    #[test]
    fn region_hints_extract_codes() {
        let r = registry();
        let amazon = r.get("amazon").unwrap();
        assert_eq!(
            amazon.region_hint.extract("t0.iot.us-east-1.amazonaws.com"),
            Some("us-east-1".to_string())
        );
        assert_eq!(
            amazon.region_hint.extract("*.iot.eu-west-1.amazonaws.com"),
            Some("eu-west-1".to_string())
        );
        let fujitsu = r.get("fujitsu").unwrap();
        assert_eq!(
            fujitsu
                .region_hint
                .extract("iot.jp-east-1.paas.cloud.global.fujitsu.com."),
            Some("jp-east-1".to_string())
        );
        let microsoft = r.get("microsoft").unwrap();
        assert_eq!(microsoft.region_hint.extract("h.azure-devices.net"), None);
        let sierra = r.get("sierra").unwrap();
        assert_eq!(
            sierra.region_hint.extract("eu.airvantage.net"),
            Some("eu".to_string())
        );
    }

    #[test]
    fn region_hint_edge_cases() {
        let hint = RegionHint::LabelFromRight(2);
        assert_eq!(hint.extract("a.b"), None); // too few labels
        assert_eq!(hint.extract("*.amazonaws.com"), None); // wildcard label
        assert_eq!(RegionHint::None.extract("x.y.z"), None);
    }

    #[test]
    fn documented_anycast_flags() {
        let r = registry();
        assert!(r.get("amazon").unwrap().documented_anycast);
        assert!(r.get("siemens").unwrap().documented_anycast);
        assert!(!r.get("google").unwrap().documented_anycast);
    }

    #[test]
    fn documented_ports_match_table1_shapes() {
        let r = registry();
        // All sixteen claim MQTT support in some form except PTC
        // ("protocol agnostic" — we record its generic TLS + MQTT + UDP).
        for p in r.providers() {
            assert!(!p.ports.is_empty(), "{}", p.name);
        }
        let baidu = r.get("baidu").unwrap();
        assert!(baidu.ports.iter().any(|d| d.port == PortProto::tcp(1884)));
        let siemens = r.get("siemens").unwrap();
        assert!(siemens
            .ports
            .iter()
            .any(|d| d.port == PortProto::tcp(61616)));
    }
}
