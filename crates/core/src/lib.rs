//! # iotmap-core — the paper's methodology
//!
//! This crate is the primary contribution of *"Deep Dive into the IoT
//! Backend Ecosystem"* (IMC 2022), reimplemented: a pipeline that fuses
//!
//! 1. **provider documentation** → domain patterns ([`patterns`]),
//! 2. **TLS certificates** from Internet-wide scans,
//! 3. **IPv6 hitlist banner grabs**,
//! 4. **passive DNS** (DNSDB-style regex + time-range queries), and
//! 5. **active DNS** from three vantage points
//!
//! into per-provider backend IP sets with per-source attribution
//! ([`discovery`]); validates them (shared-vs-dedicated classification and
//! published ground truth, [`validate`]); infers physical footprints by
//! majority vote over location sources ([`footprint`]); characterizes
//! deployments Table-1-style ([`characterize`]); measures set stability
//! over days ([`stability`]); and audits exposure to routing incidents and
//! blocklists ([`disruptions`]).
//!
//! The pipeline consumes only *measurement artifacts* ([`sources`]): it
//! has no access to — and no dependency on — the synthetic world's ground
//! truth. Run it against `iotmap-world`'s collected datasets, or adapt the
//! same structs to real Censys/DNSDB exports.

pub mod certid;
pub mod characterize;
pub mod discovery;
pub mod disruptions;
pub mod footprint;
pub mod incremental;
pub mod matcher;
pub mod monitor;
pub mod patterns;
pub mod ports;
pub mod report;
pub mod sources;
pub mod stability;
pub mod validate;

pub use certid::{cert_evidence, evidence_memos, CertEvidence, CertSet, CertVerifyMemo};
pub use characterize::{CharacterizationRow, Characterizer, StrategyCall};
pub use discovery::{
    DiscoveryPipeline, DiscoveryResult, IpEvidence, ProviderDiscovery, Source, SourceSet,
};
pub use footprint::{Footprint, FootprintInference, IpLocation};
pub use incremental::IncrementalDiscovery;
pub use matcher::{MatchEngine, MatchTable};
pub use monitor::{Monitor, MonitoringWindow, TrendFinding, TrendKind};
pub use patterns::{PatternRegistry, ProviderPatterns};
pub use ports::ObservedPorts;
pub use sources::DataSources;
pub use stability::{DailyDiff, StabilityAnalysis};
pub use validate::{GroundTruthReport, SharedIpClassifier, SharedVerdict};
