//! Observed service ports (§4.4, measured).
//!
//! Table 1's port column comes from documentation; this module checks it
//! against the *measured* port-scan view: which ports do the discovered
//! gateways actually listen on, how would IANA conventions label them, and
//! which listening ports a pure certificate scan can never see (plaintext
//! MQTT, custom TCP) — the paper's "purely probing the expected ports can
//! be misleading" finding.

use crate::discovery::ProviderDiscovery;
use crate::patterns::ProviderPatterns;
use iotmap_nettypes::{AppProtocol, PortProto};
use iotmap_scan::CensysSnapshot;
use std::collections::{BTreeMap, HashSet};
use std::net::IpAddr;

/// Per-provider observed-port report.
#[derive(Debug, Clone)]
pub struct ObservedPorts {
    pub provider: String,
    /// Open port → number of discovered gateways listening on it.
    pub listeners: BTreeMap<PortProto, usize>,
    /// Ports that are open but absent from the provider's documentation.
    pub undocumented: Vec<PortProto>,
    /// Documented ports never observed open on any discovered gateway.
    pub unobserved_documented: Vec<PortProto>,
    /// Open ports on which a TLS certificate was actually harvested.
    pub cert_bearing: HashSet<PortProto>,
}

impl ObservedPorts {
    /// Analyze one provider against the port-scan view of the snapshots.
    pub fn analyze(
        patterns: &ProviderPatterns,
        discovery: &ProviderDiscovery,
        snapshots: &[CensysSnapshot],
    ) -> ObservedPorts {
        let mut listeners: BTreeMap<PortProto, HashSet<IpAddr>> = BTreeMap::new();
        let mut cert_bearing = HashSet::new();
        for snapshot in snapshots {
            for (addr, ports) in &snapshot.host_ports {
                let ip = IpAddr::V4(*addr);
                if !discovery.ips.contains_key(&ip) {
                    continue;
                }
                for p in ports {
                    listeners.entry(*p).or_default().insert(ip);
                }
            }
            for record in &snapshot.records {
                if discovery.ips.contains_key(&record.ip) {
                    cert_bearing.insert(record.port);
                }
            }
        }
        let documented: HashSet<PortProto> = patterns.ports.iter().map(|d| d.port).collect();
        let observed: HashSet<PortProto> = listeners.keys().copied().collect();
        let mut undocumented: Vec<PortProto> = observed.difference(&documented).copied().collect();
        undocumented.sort();
        let mut unobserved_documented: Vec<PortProto> =
            documented.difference(&observed).copied().collect();
        unobserved_documented.sort();
        ObservedPorts {
            provider: patterns.name.to_string(),
            listeners: listeners
                .into_iter()
                .map(|(p, ips)| (p, ips.len()))
                .collect(),
            undocumented,
            unobserved_documented,
            cert_bearing,
        }
    }

    /// Open ports that can never yield a certificate (the blind spot of a
    /// TLS-only scan).
    pub fn cert_blind_ports(&self) -> Vec<PortProto> {
        self.listeners
            .keys()
            .filter(|p| !self.cert_bearing.contains(p))
            .copied()
            .collect()
    }

    /// IANA-convention labelling of the observed ports — what a
    /// port-number-based classifier would conclude (Fig. 11's axis).
    pub fn iana_labels(&self) -> BTreeMap<AppProtocol, usize> {
        let mut out: BTreeMap<AppProtocol, usize> = BTreeMap::new();
        for (port, n) in &self.listeners {
            *out.entry(AppProtocol::classify(*port)).or_default() += n;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::IpEvidence;
    use crate::patterns::PatternRegistry;
    use iotmap_nettypes::Date;
    use iotmap_scan::CensysRecord;
    use iotmap_tls::{Certificate, SanName};
    use std::net::Ipv4Addr;

    fn snapshot(hosts: &[(&str, &[u16])], cert_on: &[(&str, u16)]) -> CensysSnapshot {
        let validity =
            iotmap_nettypes::StudyPeriod::from_dates(Date::new(2022, 1, 1), Date::new(2023, 1, 1));
        CensysSnapshot {
            date: Date::new(2022, 2, 28),
            records: cert_on
                .iter()
                .map(|(ip, port)| CensysRecord {
                    ip: ip.parse().unwrap(),
                    port: PortProto::tcp(*port),
                    certificate: Certificate::new(
                        "c",
                        vec![SanName::parse("*.iot.example").unwrap()],
                        validity,
                    )
                    .into(),
                    location: None,
                })
                .collect(),
            host_ports: hosts
                .iter()
                .map(|(ip, ports)| {
                    (
                        ip.parse::<Ipv4Addr>().unwrap(),
                        ports.iter().map(|p| PortProto::tcp(*p)).collect(),
                    )
                })
                .collect(),
        }
    }

    fn discovery(ips: &[&str]) -> ProviderDiscovery {
        let mut d = ProviderDiscovery {
            name: "alibaba".to_string(),
            ..Default::default()
        };
        for ip in ips {
            d.ips.insert(ip.parse().unwrap(), IpEvidence::default());
        }
        d
    }

    #[test]
    fn observed_vs_documented() {
        let registry = PatternRegistry::paper_defaults();
        let patterns = registry.get("alibaba").unwrap();
        // Alibaba documents MQTT 1883, HTTPS 443, CoAP 5682 (UDP).
        let snap = snapshot(
            &[("10.0.0.1", &[1883, 443, 61616])], // 61616 is undocumented
            &[("10.0.0.1", 443)],
        );
        let disc = discovery(&["10.0.0.1"]);
        let obs = ObservedPorts::analyze(patterns, &disc, &[snap]);
        assert_eq!(obs.listeners.len(), 3);
        assert_eq!(obs.undocumented, vec![PortProto::tcp(61616)]);
        // The documented UDP CoAP port was never seen by this TCP scan.
        assert!(obs
            .unobserved_documented
            .contains(&iotmap_nettypes::PortProto::udp(5682)));
        // Plaintext MQTT listens but bears no certificate.
        let blind = obs.cert_blind_ports();
        assert!(blind.contains(&PortProto::tcp(1883)));
        assert!(!blind.contains(&PortProto::tcp(443)));
    }

    #[test]
    fn undiscovered_hosts_ignored() {
        let registry = PatternRegistry::paper_defaults();
        let patterns = registry.get("alibaba").unwrap();
        let snap = snapshot(&[("10.0.0.9", &[443])], &[]);
        let disc = discovery(&["10.0.0.1"]);
        let obs = ObservedPorts::analyze(patterns, &disc, &[snap]);
        assert!(obs.listeners.is_empty());
    }

    #[test]
    fn iana_labels_cannot_see_mqtt_over_443() {
        let registry = PatternRegistry::paper_defaults();
        let patterns = registry.get("amazon").unwrap();
        let snap = snapshot(&[("10.0.0.1", &[443, 8883])], &[]);
        let mut disc = discovery(&["10.0.0.1"]);
        disc.name = "amazon".to_string();
        let obs = ObservedPorts::analyze(patterns, &disc, &[snap]);
        let labels = obs.iana_labels();
        // Port-number classification calls 443 "HTTPS" even though Amazon
        // documents MQTT on it — the §4.4/§5.5 methodological gap.
        assert_eq!(labels.get(&AppProtocol::Https), Some(&1));
        assert_eq!(labels.get(&AppProtocol::MqttTls), Some(&1));
        assert!(!labels.contains_key(&AppProtocol::Mqtt));
    }
}
