//! Table 1 characterization: ASes, address-space size, footprint,
//! protocols, and deployment strategy.
//!
//! §4.2's DI/PR call: "We say that an IoT backend uses DI if all its
//! identified IP addresses are announced by an Autonomous System that is
//! managed by the backend. If the IP addresses are announced by a cloud
//! provider or CDN, we refer to it as PR."

use crate::discovery::ProviderDiscovery;
use crate::footprint::Footprint;
use crate::patterns::ProviderPatterns;
use crate::sources::DataSources;
use iotmap_nettypes::{Asn, Ipv4Prefix, Ipv6Prefix};
use std::collections::BTreeSet;
use std::net::IpAddr;

/// Known public cloud / CDN organizations (public knowledge a measurement
/// study brings to the table — WHOIS-level information).
const CLOUD_ORGS: [&str; 4] = [
    "Amazon Web Services",
    "Microsoft Azure",
    "Alibaba Cloud",
    "Akamai Technologies",
];

/// The inferred deployment strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyCall {
    Dedicated,
    PublicCloud,
    Mixed,
    /// No announcements found (discovery was empty).
    Unknown,
}

impl StrategyCall {
    /// Table 1 label.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyCall::Dedicated => "DI",
            StrategyCall::PublicCloud => "PR",
            StrategyCall::Mixed => "DI+PR",
            StrategyCall::Unknown => "?",
        }
    }
}

/// One Table 1 row, as measured.
#[derive(Debug, Clone)]
pub struct CharacterizationRow {
    pub provider: String,
    pub display: String,
    pub asns: BTreeSet<Asn>,
    pub v4_slash24: usize,
    pub v6_slash56: usize,
    pub v4_ips: usize,
    pub v6_ips: usize,
    pub locations: usize,
    pub countries: usize,
    pub ports: String,
    pub strategy: StrategyCall,
    pub anycast: bool,
}

/// The characterizer.
pub struct Characterizer;

impl Characterizer {
    /// Build one provider's Table 1 row.
    pub fn row(
        patterns: &ProviderPatterns,
        discovery: &ProviderDiscovery,
        footprint: &Footprint,
        sources: &DataSources<'_>,
    ) -> CharacterizationRow {
        let _span = iotmap_obs::span!(format!("core.characterize.{}", discovery.name));
        iotmap_obs::count!("characterize.rows");
        let mut asns = BTreeSet::new();
        let mut s24 = BTreeSet::new();
        let mut s56 = BTreeSet::new();
        let mut v4 = 0usize;
        let mut v6 = 0usize;
        let mut cloud_announced = 0usize;
        let mut own_announced = 0usize;

        // Special case the provider that *is* a cloud: Amazon IoT announced
        // by Amazon's ASes is dedicated infrastructure.
        let self_cloud = patterns.display.split_whitespace().next().unwrap_or("");

        for &ip in discovery.ips.keys() {
            match ip {
                IpAddr::V4(a) => {
                    v4 += 1;
                    s24.insert(Ipv4Prefix::slash24_of(a));
                }
                IpAddr::V6(a) => {
                    v6 += 1;
                    s56.insert(Ipv6Prefix::slash56_of(a));
                }
            }
            if let Some(origin) = sources.routeviews.origin(ip) {
                asns.insert(origin.asn);
                let is_cloud_org =
                    CLOUD_ORGS.iter().any(|o| origin.org == *o) && !origin.org.contains(self_cloud);
                if is_cloud_org {
                    cloud_announced += 1;
                } else {
                    own_announced += 1;
                }
            }
        }

        let strategy = match (own_announced, cloud_announced) {
            (0, 0) => StrategyCall::Unknown,
            (_, 0) => StrategyCall::Dedicated,
            (0, _) => StrategyCall::PublicCloud,
            (own, cloud) => {
                // Tolerate small stray shares (below 5%): a handful of
                // vanity or transition addresses does not change the
                // deployment strategy.
                let total = (own + cloud) as f64;
                if own as f64 / total < 0.05 {
                    StrategyCall::PublicCloud
                } else if cloud as f64 / total < 0.05 {
                    StrategyCall::Dedicated
                } else {
                    StrategyCall::Mixed
                }
            }
        };

        let ports = patterns
            .ports
            .iter()
            .map(|d| format!("{}({})", d.protocol, d.port.port))
            .collect::<Vec<_>>()
            .join(", ");

        CharacterizationRow {
            provider: patterns.name.to_string(),
            display: patterns.display.to_string(),
            asns,
            v4_slash24: s24.len(),
            v6_slash56: s56.len(),
            v4_ips: v4,
            v6_ips: v6,
            locations: footprint.location_count(),
            countries: footprint.countries().len(),
            ports,
            strategy,
            anycast: patterns.documented_anycast,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::IpEvidence;
    use crate::patterns::PatternRegistry;
    use iotmap_dns::{PassiveDnsDb, ZoneDb};
    use iotmap_nettypes::{BgpOrigin, BgpTable, Continent, Location};

    fn origin(asn: u32, org: &str) -> BgpOrigin {
        BgpOrigin {
            asn: Asn(asn),
            org: org.to_string(),
            location_label: "x".into(),
            location: Some(Location::new(
                "Frankfurt",
                "DE",
                Continent::Europe,
                50.1,
                8.7,
            )),
        }
    }

    fn run(
        ips: &[&str],
        announcements: &[(&str, u32, &str)],
        provider: &str,
    ) -> CharacterizationRow {
        let registry = PatternRegistry::paper_defaults();
        let patterns = registry.get(provider).unwrap();
        let mut bgp = BgpTable::new();
        for (pfx, asn, org) in announcements {
            bgp.announce_v4(pfx.parse().unwrap(), origin(*asn, org));
        }
        let pdns = PassiveDnsDb::new();
        let zones = ZoneDb::new();
        let sources = DataSources {
            censys: &[],
            zgrab_v6: &[],
            passive_dns: &pdns,
            zones: &zones,
            routeviews: &bgp,
            latency: None,
        };
        let mut disc = ProviderDiscovery {
            name: provider.to_string(),
            ..Default::default()
        };
        for ip in ips {
            disc.ips.insert(ip.parse().unwrap(), IpEvidence::default());
        }
        let footprint = crate::footprint::FootprintInference::infer(&disc, &sources);
        Characterizer::row(patterns, &disc, &footprint, &sources)
    }

    #[test]
    fn dedicated_call_for_own_asn() {
        let row = run(
            &["60.0.0.1", "60.0.1.1"],
            &[("60.0.0.0/16", 8068, "Microsoft Azure IoT Hub")],
            "microsoft",
        );
        assert_eq!(row.strategy, StrategyCall::Dedicated);
        assert_eq!(row.v4_slash24, 2);
        assert_eq!(row.asns.len(), 1);
        assert_eq!(row.locations, 1);
        assert_eq!(row.countries, 1);
    }

    #[test]
    fn public_cloud_call_for_cloud_org() {
        let row = run(
            &["52.0.0.1"],
            &[("52.0.0.0/13", 14618, "Amazon Web Services")],
            "bosch",
        );
        assert_eq!(row.strategy, StrategyCall::PublicCloud);
    }

    #[test]
    fn amazon_on_aws_is_dedicated() {
        // Amazon IoT announced by "Amazon Web Services" must not be
        // classified as leasing from a third party.
        let row = run(
            &["52.0.0.1"],
            &[("52.0.0.0/13", 14618, "Amazon Web Services")],
            "amazon",
        );
        assert_eq!(row.strategy, StrategyCall::Dedicated);
        assert!(row.anycast);
    }

    #[test]
    fn mixed_call_for_di_plus_cdn() {
        let row = run(
            &["60.0.0.1", "23.0.0.1"],
            &[
                ("60.0.0.0/16", 31898, "Oracle IoT"),
                ("23.0.0.0/16", 20940, "Akamai Technologies"),
            ],
            "oracle",
        );
        assert_eq!(row.strategy, StrategyCall::Mixed);
        assert_eq!(row.asns.len(), 2);
    }

    #[test]
    fn unknown_when_nothing_discovered() {
        let row = run(&[], &[], "fujitsu");
        assert_eq!(row.strategy, StrategyCall::Unknown);
        assert_eq!(row.v4_slash24, 0);
    }

    #[test]
    fn v6_slash56_counting() {
        let registry = PatternRegistry::paper_defaults();
        let patterns = registry.get("tencent").unwrap();
        let bgp = BgpTable::new();
        let pdns = PassiveDnsDb::new();
        let zones = ZoneDb::new();
        let sources = DataSources {
            censys: &[],
            zgrab_v6: &[],
            passive_dns: &pdns,
            zones: &zones,
            routeviews: &bgp,
            latency: None,
        };
        let mut disc = ProviderDiscovery {
            name: "tencent".to_string(),
            ..Default::default()
        };
        for ip in ["2a09::1", "2a09::2", "2a09:0:0:100::1"] {
            disc.ips.insert(ip.parse().unwrap(), IpEvidence::default());
        }
        let footprint = crate::footprint::FootprintInference::infer(&disc, &sources);
        let row = Characterizer::row(patterns, &disc, &footprint, &sources);
        assert_eq!(row.v6_ips, 3);
        assert_eq!(row.v6_slash56, 2);
    }

    #[test]
    fn ports_column_renders_documentation() {
        let row = run(&[], &[], "baidu");
        assert!(row.ports.contains("MQTT(1884)"), "{}", row.ports);
        assert!(row.ports.contains("CoAP(5683)"));
    }
}
