//! Stability of the discovered IP sets across days (§4.1, Figure 4).
//!
//! "Our reference date is the first day… We distinguish between IPs that
//! are in both sets (green bar), that are newly discovered (red), and
//! those that are only in the first set (blue)."

use crate::discovery::ProviderDiscovery;
use std::collections::HashSet;
use std::net::IpAddr;

/// The three-way diff between a reference day and a comparison day.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DailyDiff {
    pub reference_day: i64,
    pub compare_day: i64,
    /// IPs present on both days.
    pub both: usize,
    /// IPs only on the comparison day (newly discovered).
    pub added: usize,
    /// IPs only on the reference day (gone).
    pub removed: usize,
}

impl DailyDiff {
    /// Fraction of the union that is stable.
    pub fn stability(&self) -> f64 {
        let total = self.both + self.added + self.removed;
        if total == 0 {
            return 1.0;
        }
        self.both as f64 / total as f64
    }

    /// Churn = 1 − stability.
    pub fn churn(&self) -> f64 {
        1.0 - self.stability()
    }
}

/// Stability analysis over a discovery.
pub struct StabilityAnalysis;

impl StabilityAnalysis {
    /// Diff the sets discovered on two days.
    pub fn diff(discovery: &ProviderDiscovery, reference_day: i64, compare_day: i64) -> DailyDiff {
        let a: HashSet<IpAddr> = discovery.daily_set(reference_day);
        let b: HashSet<IpAddr> = discovery.daily_set(compare_day);
        DailyDiff {
            reference_day,
            compare_day,
            both: a.intersection(&b).count(),
            added: b.difference(&a).count(),
            removed: a.difference(&b).count(),
        }
    }

    /// Figure 4's bar set: reference day against each of `compare_days`.
    pub fn figure4(
        discovery: &ProviderDiscovery,
        reference_day: i64,
        compare_days: &[i64],
    ) -> Vec<DailyDiff> {
        compare_days
            .iter()
            .map(|&d| Self::diff(discovery, reference_day, d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::IpEvidence;

    fn discovery(entries: &[(&str, &[i64])]) -> ProviderDiscovery {
        let mut p = ProviderDiscovery {
            name: "x".to_string(),
            ..Default::default()
        };
        for (ip, days) in entries {
            let mut ev = IpEvidence::default();
            for d in *days {
                ev.days.insert(*d);
            }
            p.ips.insert(ip.parse().unwrap(), ev);
        }
        p
    }

    #[test]
    fn stable_set_has_no_churn() {
        let d = discovery(&[
            ("10.0.0.1", &[100, 101, 102]),
            ("10.0.0.2", &[100, 101, 102]),
        ]);
        let diff = StabilityAnalysis::diff(&d, 100, 102);
        assert_eq!(diff.both, 2);
        assert_eq!(diff.added, 0);
        assert_eq!(diff.removed, 0);
        assert_eq!(diff.stability(), 1.0);
    }

    #[test]
    fn churny_set_diffs() {
        let d = discovery(&[
            ("10.0.0.1", &[100, 101]), // stays
            ("10.0.0.2", &[100]),      // gone on 101
            ("10.0.0.3", &[101]),      // new on 101
        ]);
        let diff = StabilityAnalysis::diff(&d, 100, 101);
        assert_eq!(diff.both, 1);
        assert_eq!(diff.added, 1);
        assert_eq!(diff.removed, 1);
        assert!((diff.stability() - 1.0 / 3.0).abs() < 1e-9);
        assert!((diff.churn() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn figure4_multiple_comparisons() {
        let d = discovery(&[("10.0.0.1", &[100, 101, 103, 106])]);
        let bars = StabilityAnalysis::figure4(&d, 100, &[101, 103, 106]);
        assert_eq!(bars.len(), 3);
        assert!(bars.iter().all(|b| b.both == 1));
        assert_eq!(bars[0].compare_day, 101);
    }

    #[test]
    fn empty_days_are_fully_stable() {
        let d = discovery(&[]);
        let diff = StabilityAnalysis::diff(&d, 100, 101);
        assert_eq!(diff.stability(), 1.0);
    }
}
