//! Abstract syntax tree for the supported regex dialect.

use crate::classes::ByteSet;

/// A parsed regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single byte from a set (`a`, `.`, `[a-z]`, `[[:alnum:]]`, …).
    Class(ByteSet),
    /// Start-of-input anchor `^`.
    AnchorStart,
    /// End-of-input anchor `$`.
    AnchorEnd,
    /// Concatenation of sub-expressions.
    Concat(Vec<Ast>),
    /// Alternation `a|b|c`.
    Alternate(Vec<Ast>),
    /// Repetition with inclusive bounds; `max == None` means unbounded.
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
    },
    /// A parenthesized group. Groups are non-capturing for matching
    /// purposes but preserved in the AST for fidelity with the paper's
    /// published patterns.
    Group(Box<Ast>),
}

impl Ast {
    /// Can this expression match the empty string?
    pub fn matches_empty(&self) -> bool {
        match self {
            Ast::Empty | Ast::AnchorStart | Ast::AnchorEnd => true,
            Ast::Class(_) => false,
            Ast::Concat(parts) => parts.iter().all(|p| p.matches_empty()),
            Ast::Alternate(parts) => parts.iter().any(|p| p.matches_empty()),
            Ast::Repeat { node, min, .. } => *min == 0 || node.matches_empty(),
            Ast::Group(inner) => inner.matches_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_empty_logic() {
        let a = Ast::Class(ByteSet::single(b'a'));
        assert!(!a.matches_empty());
        assert!(Ast::Empty.matches_empty());
        assert!(Ast::Repeat {
            node: Box::new(a.clone()),
            min: 0,
            max: None
        }
        .matches_empty());
        assert!(!Ast::Repeat {
            node: Box::new(a.clone()),
            min: 1,
            max: None
        }
        .matches_empty());
        assert!(Ast::Alternate(vec![a.clone(), Ast::Empty]).matches_empty());
        assert!(!Ast::Concat(vec![a, Ast::Empty]).matches_empty());
        assert!(Ast::Group(Box::new(Ast::Empty)).matches_empty());
    }
}
