//! Literal prefix/suffix extraction from the AST.
//!
//! The provider patterns of §3.2 almost always end in a literal registered
//! domain (`(.+)\.iot\.…\.amazonaws\.com\.$`). A matcher that knows the
//! mandatory literal tail of a pattern can answer "which names could this
//! pattern possibly match?" with a suffix-index lookup instead of running
//! the full NFA over every name. This module computes, per pattern:
//!
//! * the **mandatory suffix**: a byte string every match must end with, and
//! * whether the pattern is **end-anchored**: every match must end at the
//!   end of input (`$` on every path).
//!
//! Only the combination of both makes the suffix usable as an index key:
//! an end-anchored pattern with mandatory suffix `S` can only ever match
//! names whose text ends with `S`. The extraction is conservative — when in
//! doubt it returns a shorter (possibly empty) literal, never a wrong one —
//! so index lookups are a superset of true matches and a per-candidate
//! verification run of the pattern's own regex stays sound. Mandatory
//! prefixes are computed symmetrically.

use crate::ast::Ast;

/// A mandatory literal at one end of a (sub)pattern.
///
/// `bytes` is text every match of the subpattern must end (or start) with;
/// `exact` means the subpattern matches *exactly* `bytes` and nothing else,
/// which is what lets a literal keep growing across a concatenation.
struct Lit {
    bytes: Vec<u8>,
    exact: bool,
}

impl Lit {
    fn empty(exact: bool) -> Lit {
        Lit {
            bytes: Vec::new(),
            exact,
        }
    }
}

/// The mandatory literal suffix of every match of `ast`.
fn suffix_of(ast: &Ast) -> Lit {
    match ast {
        // Zero-width nodes match only the empty string.
        Ast::Empty | Ast::AnchorStart | Ast::AnchorEnd => Lit::empty(true),
        Ast::Class(set) => match set.as_single() {
            Some(b) => Lit {
                bytes: vec![b],
                exact: true,
            },
            None => Lit::empty(false),
        },
        Ast::Group(inner) => suffix_of(inner),
        Ast::Concat(parts) => {
            // Accumulate right-to-left while each part matches exactly its
            // literal; the first inexact part contributes its own mandatory
            // suffix and stops the accumulation.
            let mut bytes = Vec::new();
            let mut exact = true;
            for part in parts.iter().rev() {
                let mut t = suffix_of(part);
                t.bytes.extend(bytes);
                bytes = t.bytes;
                if !t.exact {
                    exact = false;
                    break;
                }
            }
            Lit { bytes, exact }
        }
        Ast::Alternate(branches) => {
            if branches.is_empty() {
                return Lit::empty(false);
            }
            let lits: Vec<Lit> = branches.iter().map(suffix_of).collect();
            let mut common = lits[0].bytes.clone();
            for l in &lits[1..] {
                let keep = common
                    .iter()
                    .rev()
                    .zip(l.bytes.iter().rev())
                    .take_while(|(a, b)| a == b)
                    .count();
                common.drain(..common.len() - keep);
            }
            let exact = lits.iter().all(|l| l.exact && l.bytes == common);
            Lit {
                bytes: common,
                exact,
            }
        }
        Ast::Repeat { node, min, max } => {
            let t = suffix_of(node);
            match (*min, *max) {
                // Optional: nothing is mandatory. (Exact only in the
                // degenerate cases where every count matches empty.)
                (0, _) => Lit::empty(t.exact && t.bytes.is_empty()),
                // Fixed count of an exact literal: the whole repeat is one.
                (m, Some(x)) if m == x && t.exact => Lit {
                    bytes: t.bytes.repeat(m as usize),
                    exact: true,
                },
                // At least one copy: the last copy's mandatory suffix holds.
                _ => Lit {
                    bytes: t.bytes,
                    exact: false,
                },
            }
        }
    }
}

/// The mandatory literal prefix of every match of `ast` (mirror image of
/// [`suffix_of`]).
fn prefix_of(ast: &Ast) -> Lit {
    match ast {
        Ast::Empty | Ast::AnchorStart | Ast::AnchorEnd => Lit::empty(true),
        Ast::Class(set) => match set.as_single() {
            Some(b) => Lit {
                bytes: vec![b],
                exact: true,
            },
            None => Lit::empty(false),
        },
        Ast::Group(inner) => prefix_of(inner),
        Ast::Concat(parts) => {
            let mut bytes = Vec::new();
            let mut exact = true;
            for part in parts {
                let t = prefix_of(part);
                bytes.extend(t.bytes);
                if !t.exact {
                    exact = false;
                    break;
                }
            }
            Lit { bytes, exact }
        }
        Ast::Alternate(branches) => {
            if branches.is_empty() {
                return Lit::empty(false);
            }
            let lits: Vec<Lit> = branches.iter().map(prefix_of).collect();
            let mut common = lits[0].bytes.clone();
            for l in &lits[1..] {
                let keep = common
                    .iter()
                    .zip(l.bytes.iter())
                    .take_while(|(a, b)| a == b)
                    .count();
                common.truncate(keep);
            }
            let exact = lits.iter().all(|l| l.exact && l.bytes == common);
            Lit {
                bytes: common,
                exact,
            }
        }
        Ast::Repeat { node, min, max } => {
            let t = prefix_of(node);
            match (*min, *max) {
                (0, _) => Lit::empty(t.exact && t.bytes.is_empty()),
                (m, Some(x)) if m == x && t.exact => Lit {
                    bytes: t.bytes.repeat(m as usize),
                    exact: true,
                },
                _ => Lit {
                    bytes: t.bytes,
                    exact: false,
                },
            }
        }
    }
}

/// Conservatively: must every match end at the end of input (`$`)?
pub fn ends_anchored(ast: &Ast) -> bool {
    match ast {
        Ast::AnchorEnd => true,
        Ast::Group(inner) => ends_anchored(inner),
        Ast::Concat(parts) => parts.last().is_some_and(ends_anchored),
        Ast::Alternate(parts) => !parts.is_empty() && parts.iter().all(ends_anchored),
        Ast::Repeat { node, min, .. } => *min >= 1 && ends_anchored(node),
        _ => false,
    }
}

/// Conservatively: must every match begin at the start of input (`^`)?
pub fn starts_anchored(ast: &Ast) -> bool {
    match ast {
        Ast::AnchorStart => true,
        Ast::Group(inner) => starts_anchored(inner),
        Ast::Concat(parts) => parts.first().is_some_and(starts_anchored),
        Ast::Alternate(parts) => !parts.is_empty() && parts.iter().all(starts_anchored),
        Ast::Repeat { node, min, .. } => *min >= 1 && starts_anchored(node),
        _ => false,
    }
}

/// Normalize an extracted literal for index use: require printable, valid
/// UTF-8 text and lowercase it when the pattern is case-insensitive.
fn normalize(lit: Lit, case_insensitive: bool) -> Option<String> {
    if lit.bytes.is_empty() {
        return None;
    }
    let mut s = String::from_utf8(lit.bytes).ok()?;
    if case_insensitive {
        s.make_ascii_lowercase();
    }
    Some(s)
}

/// The usable literal suffix of a pattern: text every match must end with,
/// *at the end of the input*. `None` when the pattern is not end-anchored
/// or no non-empty mandatory literal exists.
pub fn literal_suffix(ast: &Ast, case_insensitive: bool) -> Option<String> {
    if !ends_anchored(ast) {
        return None;
    }
    normalize(suffix_of(ast), case_insensitive)
}

/// The usable literal prefix of a pattern: text every match must start
/// with, at the start of the input. `None` when the pattern is not
/// start-anchored or no non-empty mandatory literal exists.
pub fn literal_prefix(ast: &Ast, case_insensitive: bool) -> Option<String> {
    if !starts_anchored(ast) {
        return None;
    }
    normalize(prefix_of(ast), case_insensitive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn suffix(pat: &str) -> Option<String> {
        literal_suffix(&parse(pat).unwrap(), false)
    }

    fn prefix(pat: &str) -> Option<String> {
        literal_prefix(&parse(pat).unwrap(), false)
    }

    #[test]
    fn plain_literal_tail() {
        assert_eq!(
            suffix(r"(.+)\.azure-devices\.net\.$").as_deref(),
            Some(".azure-devices.net.")
        );
    }

    #[test]
    fn unanchored_pattern_has_no_usable_suffix() {
        // Without `$` a match may end mid-name, so the literal cannot key a
        // suffix index.
        assert_eq!(suffix(r"(.+)\.azure-devices\.net\."), None);
    }

    #[test]
    fn alternation_takes_common_suffix() {
        // Branch-specific parts stop the literal; the shared tail survives.
        assert_eq!(
            suffix(r"(.+)\.(eu1|eu2|us1|cn1)\.mindsphere\.io\.$").as_deref(),
            Some(".mindsphere.io.")
        );
        // A common tail *within* the alternation is kept too.
        assert_eq!(suffix(r"(abc|xbc)$").as_deref(), Some("bc"));
        // No common tail at all: the literal stops before the alternation.
        assert_eq!(suffix(r"x(a|b)$"), None);
    }

    #[test]
    fn optional_tail_yields_nothing() {
        // `(\.)?` at the end: the dot is not mandatory, and the optional
        // node also breaks exactness for everything to its left.
        assert_eq!(suffix(r"(.+)com(\.)?$"), None);
        // But an optional *interior* group doesn't disturb the tail.
        assert_eq!(
            suffix(r"(.+)(-[a-z]+)?\.iot\.sap\.$").as_deref(),
            Some(".iot.sap.")
        );
    }

    #[test]
    fn no_extractable_literal() {
        assert_eq!(suffix(r"(.+)$"), None);
        assert_eq!(suffix(r"[a-z]+$"), None);
        assert_eq!(suffix(r".*$"), None);
    }

    #[test]
    fn counted_repeats_of_single_bytes_expand() {
        assert_eq!(suffix(r"(.+)a{3}$").as_deref(), Some("aaa"));
        // Variable count: only one copy is mandatory.
        assert_eq!(suffix(r"(.+)xa{2,5}$").as_deref(), Some("a"));
    }

    #[test]
    fn min_one_repeat_keeps_last_copy_suffix() {
        // `(\.com)+$`: every match ends with one full copy.
        assert_eq!(suffix(r"(.+)(\.com)+$").as_deref(), Some(".com"));
    }

    #[test]
    fn prefixes_mirror_suffixes() {
        assert_eq!(
            prefix(r"^iot\.example\.(.+)$").as_deref(),
            Some("iot.example.")
        );
        assert_eq!(prefix(r"iot\.example\.(.+)$"), None); // not `^`-anchored
        assert_eq!(
            prefix(r"^(mqtt|cloudiotdevice)\.googleapis\.com\.$").as_deref(),
            None // branches share no head literal
        );
        assert_eq!(prefix(r"^(na|nb)x$").as_deref(), Some("n"));
    }

    #[test]
    fn case_insensitive_literals_are_lowercased() {
        let ast = parse(r"(.+)\.AMAZONAWS\.COM\.$").unwrap();
        assert_eq!(
            literal_suffix(&ast, true).as_deref(),
            Some(".amazonaws.com.")
        );
        assert_eq!(
            literal_suffix(&ast, false).as_deref(),
            Some(".AMAZONAWS.COM.")
        );
    }

    #[test]
    fn paper_patterns_all_have_label_aligned_tails() {
        for (pat, want) in [
            (
                r"(.+)(\.iot\.)([[:alnum:]]+(-[[:alnum:]]+)+)(\.amazonaws\.com\.$)",
                ".amazonaws.com.",
            ),
            (r"(.+\.|^)(azure-devices\.net\.$)", "azure-devices.net."),
            (
                r"^(mqtt|cloudiotdevice)\.googleapis\.com\.$",
                ".googleapis.com.",
            ),
            (r"^(na|ca|eu|ap)\.airvantage\.net\.$", ".airvantage.net."),
            (
                r"(.+\.|^)(iot\.)([[:alnum:]]+(-[[:alnum:]]+)*\.)?(oraclecloud\.com\.$)",
                "oraclecloud.com.",
            ),
        ] {
            assert_eq!(suffix(pat).as_deref(), Some(want), "{pat}");
        }
    }

    #[test]
    fn end_anchor_detection_is_conservative() {
        assert!(ends_anchored(&parse(r"a$").unwrap()));
        assert!(ends_anchored(&parse(r"(a$|b$)").unwrap()));
        assert!(!ends_anchored(&parse(r"(a$|b)").unwrap()));
        assert!(!ends_anchored(&parse(r"a").unwrap()));
        assert!(ends_anchored(&parse(r"(x$)+").unwrap()));
        assert!(!ends_anchored(&parse(r"(x$)*").unwrap()));
    }
}
