//! Query front-ends mirroring the APIs the paper used (Appendix A).
//!
//! * **DNSDB Flexible Search** — a regex over RRset owner names, with an
//!   rrtype filter (the paper's `/A` suffix).
//! * **DNSDB Basic Search** — RRset wildcard queries such as
//!   `rrset/name/*.tencentdevices.com./A`.
//! * **Censys string search** — certificate-name wildcards such as
//!   `*.iot.us-east-2.amazonaws.com`.
//!
//! All three compile down to [`Regex`] so the passive-DNS store and the
//! certificate store need only one matching code path.

use crate::{ParseErr, Regex};

/// DNS record types the study cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrTypeFilter {
    /// IPv4 address records.
    A,
    /// IPv6 address records.
    Aaaa,
    /// CNAME records (followed during resolution).
    Cname,
    /// No filter.
    Any,
}

impl RrTypeFilter {
    fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "A" => Some(RrTypeFilter::A),
            "AAAA" => Some(RrTypeFilter::Aaaa),
            "CNAME" => Some(RrTypeFilter::Cname),
            "ANY" | "" => Some(RrTypeFilter::Any),
            _ => None,
        }
    }
}

/// A compiled DNSDB query of either API type.
#[derive(Debug, Clone)]
pub struct DnsdbQuery {
    regex: Regex,
    pub rrtype: RrTypeFilter,
    pub source: QuerySource,
}

/// Which API form produced the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySource {
    FlexibleSearch,
    BasicSearch,
}

impl DnsdbQuery {
    /// Flexible Search: `"<regex>/<rrtype>"`, e.g.
    /// `(.+\.|^)(tencentdevices\.com\.$)/A`. The rrtype suffix is optional.
    pub fn flexible(query: &str) -> Result<Self, ParseErr> {
        let (pattern, rrtype) = split_rrtype(query);
        Ok(DnsdbQuery {
            regex: Regex::with_options(pattern, true)?,
            rrtype,
            source: QuerySource::FlexibleSearch,
        })
    }

    /// Basic Search: `rrset/name/<owner>/<rrtype>`, where `<owner>` may use
    /// a single leading `*.` wildcard, e.g. `rrset/name/*.ciscokinetic.io./A`.
    pub fn basic(query: &str) -> Result<Self, ParseErr> {
        let rest = query.strip_prefix("rrset/name/").ok_or(ParseErr {
            pos: 0,
            message: "basic query must start with rrset/name/".to_string(),
        })?;
        let (owner, rrtype) = split_rrtype(rest);
        let pattern = wildcard_owner_to_regex(owner);
        Ok(DnsdbQuery {
            regex: Regex::with_options(&pattern, true)?,
            rrtype,
            source: QuerySource::BasicSearch,
        })
    }

    /// Does the query match an RRset owner name (DNSDB presentation form,
    /// i.e. with trailing dot) of a given record type?
    pub fn matches(&self, owner_fqdn: &str, rrtype: RrTypeFilter) -> bool {
        let type_ok = match self.rrtype {
            RrTypeFilter::Any => true,
            t => t == rrtype,
        };
        type_ok && self.regex.is_match(owner_fqdn)
    }

    /// The compiled regex (for diagnostics).
    pub fn regex(&self) -> &Regex {
        &self.regex
    }
}

/// Split a trailing `/RRTYPE` suffix off a query string.
fn split_rrtype(query: &str) -> (&str, RrTypeFilter) {
    if let Some((head, tail)) = query.rsplit_once('/') {
        if let Some(t) = RrTypeFilter::parse(tail) {
            return (head, t);
        }
    }
    (query, RrTypeFilter::Any)
}

/// Convert a DNS owner wildcard (`*.example.com.`) to an anchored regex.
fn wildcard_owner_to_regex(owner: &str) -> String {
    let mut out = String::from("^");
    if let Some(rest) = owner.strip_prefix("*.") {
        // `*` matches one or more whole labels.
        out.push_str(r"([^.]+\.)+");
        push_literal(&mut out, rest);
    } else {
        push_literal(&mut out, owner);
    }
    if !owner.ends_with('.') {
        out.push_str(r"\.");
    }
    out.push('$');
    out
}

/// A DNSDB *rdata* (inverse) query: `rdata/ip/192.0.2.1` — "which owner
/// names resolve to this address?" The paper's shared-vs-dedicated
/// classification (§3.4) is built on exactly this API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsdbRdataQuery {
    pub ip: std::net::IpAddr,
}

impl DnsdbRdataQuery {
    /// Parse `rdata/ip/<address>`.
    pub fn parse(query: &str) -> Result<Self, ParseErr> {
        let rest = query.strip_prefix("rdata/ip/").ok_or(ParseErr {
            pos: 0,
            message: "rdata query must start with rdata/ip/".to_string(),
        })?;
        let ip = rest.parse().map_err(|_| ParseErr {
            pos: 9,
            message: format!("bad IP address {rest:?}"),
        })?;
        Ok(DnsdbRdataQuery { ip })
    }
}

/// A Censys-style certificate-name string search, e.g.
/// `*.iot.us-east-2.amazonaws.com` (no trailing dot: certificate names).
#[derive(Debug, Clone)]
pub struct CensysNameQuery {
    regex: Regex,
    raw: String,
}

impl CensysNameQuery {
    /// Compile a name query. A leading `*.` matches one or more labels;
    /// the rest is literal.
    pub fn new(query: &str) -> Result<Self, ParseErr> {
        let mut pattern = String::from("^");
        if let Some(rest) = query.strip_prefix("*.") {
            pattern.push_str(r"([^.]+\.)+");
            push_literal(&mut pattern, rest);
        } else {
            push_literal(&mut pattern, query);
        }
        pattern.push('$');
        Ok(CensysNameQuery {
            regex: Regex::with_options(&pattern, true)?,
            raw: query.to_string(),
        })
    }

    /// Does a certificate name (CN or SAN entry) match? A certificate's own
    /// wildcard (`*.iot.sap`) matches the query when the query's concrete
    /// part falls under it.
    pub fn matches_name(&self, cert_name: &str) -> bool {
        if let Some(suffix) = cert_name.strip_prefix("*.") {
            // Wildcard cert: matches if our query targets names under it.
            let q = self.raw.strip_prefix("*.").unwrap_or(&self.raw);
            q == suffix || q.ends_with(&format!(".{suffix}")) || suffix.ends_with(q)
        } else {
            self.regex.is_match(cert_name)
        }
    }

    /// The raw query string.
    pub fn raw(&self) -> &str {
        &self.raw
    }
}

/// Escape regex metacharacters and append.
fn push_literal(out: &mut String, literal: &str) {
    for c in literal.chars() {
        if "\\.+*?()|[]{}^$".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flexible_search_with_rrtype() {
        let q = DnsdbQuery::flexible(r"(.+\.|^)(tencentdevices\.com\.$)/A").unwrap();
        assert_eq!(q.rrtype, RrTypeFilter::A);
        assert!(q.matches("device1.tencentdevices.com.", RrTypeFilter::A));
        assert!(!q.matches("device1.tencentdevices.com.", RrTypeFilter::Aaaa));
        assert!(!q.matches("tencentdevices.com.cn.", RrTypeFilter::A));
    }

    #[test]
    fn flexible_search_without_rrtype_matches_any() {
        let q = DnsdbQuery::flexible(r"mqtt\.googleapis\.com\.$").unwrap();
        assert!(q.matches("mqtt.googleapis.com.", RrTypeFilter::A));
        assert!(q.matches("mqtt.googleapis.com.", RrTypeFilter::Aaaa));
    }

    #[test]
    fn basic_search_wildcard() {
        let q = DnsdbQuery::basic("rrset/name/*.ciscokinetic.io./A").unwrap();
        assert!(q.matches("gw.ciscokinetic.io.", RrTypeFilter::A));
        assert!(q.matches("a.b.ciscokinetic.io.", RrTypeFilter::A));
        assert!(!q.matches("ciscokinetic.io.", RrTypeFilter::A)); // needs a label
        assert!(!q.matches("ciscokinetic.io.evil.com.", RrTypeFilter::A));
    }

    #[test]
    fn basic_search_exact_name() {
        let q = DnsdbQuery::basic("rrset/name/mqtt.googleapis.com./A").unwrap();
        assert!(q.matches("mqtt.googleapis.com.", RrTypeFilter::A));
        assert!(!q.matches("x.mqtt.googleapis.com.", RrTypeFilter::A));
    }

    #[test]
    fn basic_search_rejects_other_paths() {
        assert!(DnsdbQuery::basic("rdata/ip/1.2.3.4").is_err());
    }

    #[test]
    fn rdata_query_parses_both_families() {
        let q = DnsdbRdataQuery::parse("rdata/ip/192.0.2.7").unwrap();
        assert_eq!(q.ip, "192.0.2.7".parse::<std::net::IpAddr>().unwrap());
        let q6 = DnsdbRdataQuery::parse("rdata/ip/2001:db8::1").unwrap();
        assert!(q6.ip.is_ipv6());
        assert!(DnsdbRdataQuery::parse("rrset/name/x./A").is_err());
        assert!(DnsdbRdataQuery::parse("rdata/ip/not-an-ip").is_err());
    }

    #[test]
    fn censys_query_concrete_cert() {
        let q = CensysNameQuery::new("*.iot.us-east-2.amazonaws.com").unwrap();
        assert!(q.matches_name("a1b2c3.iot.us-east-2.amazonaws.com"));
        assert!(!q.matches_name("iot.us-east-2.amazonaws.com"));
        assert!(!q.matches_name("a.iot.us-west-1.amazonaws.com"));
    }

    #[test]
    fn censys_query_wildcard_cert() {
        let q = CensysNameQuery::new("*.iot.us-east-2.amazonaws.com").unwrap();
        // The server presents a wildcard certificate covering the zone.
        assert!(q.matches_name("*.iot.us-east-2.amazonaws.com"));
        assert!(!q.matches_name("*.iot.eu-west-1.amazonaws.com"));
    }

    #[test]
    fn censys_exact_query() {
        let q = CensysNameQuery::new("mqtt.googleapis.com").unwrap();
        assert!(q.matches_name("mqtt.googleapis.com"));
        assert!(q.matches_name("*.googleapis.com")); // wildcard cert covers it
        assert!(!q.matches_name("mqtt.google.com"));
    }

    #[test]
    fn case_insensitive_matching() {
        let q = DnsdbQuery::flexible(r"(.+\.|^)(azure-devices\.net\.$)/A").unwrap();
        assert!(q.matches("MyHub.Azure-Devices.NET.", RrTypeFilter::A));
    }
}
