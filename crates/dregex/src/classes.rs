//! Byte sets: 256-bit bitmaps representing character classes.

use std::fmt;

/// A set of bytes, stored as a 256-bit bitmap.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ByteSet {
    bits: [u64; 4],
}

impl ByteSet {
    /// Empty set.
    pub const fn empty() -> Self {
        ByteSet { bits: [0; 4] }
    }

    /// Set containing every byte.
    pub const fn full() -> Self {
        ByteSet {
            bits: [u64::MAX; 4],
        }
    }

    /// Singleton set.
    pub fn single(b: u8) -> Self {
        let mut s = Self::empty();
        s.insert(b);
        s
    }

    /// Insert one byte.
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Insert an inclusive byte range.
    pub fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Complement (in place).
    pub fn negate(&mut self) {
        for w in &mut self.bits {
            *w = !*w;
        }
    }

    /// Union with another set.
    pub fn union_with(&mut self, other: &ByteSet) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
    }

    /// Number of contained bytes.
    pub fn len(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// True if no byte is contained.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The contained byte, if the set is a singleton.
    pub fn as_single(&self) -> Option<u8> {
        let mut found = None;
        for (i, &w) in self.bits.iter().enumerate() {
            if w == 0 {
                continue;
            }
            if found.is_some() || !w.is_power_of_two() {
                return None;
            }
            found = Some((i as u8) * 64 + w.trailing_zeros() as u8);
        }
        found
    }

    /// Close the set under ASCII case folding: for every letter present,
    /// add the other case.
    pub fn case_fold(&mut self) {
        let mut folded = *self;
        for b in b'a'..=b'z' {
            if self.contains(b) {
                folded.insert(b - 32);
            }
        }
        for b in b'A'..=b'Z' {
            if self.contains(b) {
                folded.insert(b + 32);
            }
        }
        *self = folded;
    }
}

impl fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSet(")?;
        let mut first = true;
        let mut b = 0usize;
        while b < 256 {
            if self.contains(b as u8) {
                let start = b;
                while b + 1 < 256 && self.contains((b + 1) as u8) {
                    b += 1;
                }
                if !first {
                    write!(f, ",")?;
                }
                first = false;
                if start == b {
                    write!(f, "{:#04x}", start)?;
                } else {
                    write!(f, "{:#04x}-{:#04x}", start, b)?;
                }
            }
            b += 1;
        }
        write!(f, ")")
    }
}

/// A named POSIX character class such as `[:alnum:]`.
pub fn posix_class(name: &str) -> Option<ByteSet> {
    let mut s = ByteSet::empty();
    match name {
        "alnum" => {
            s.insert_range(b'0', b'9');
            s.insert_range(b'a', b'z');
            s.insert_range(b'A', b'Z');
        }
        "alpha" => {
            s.insert_range(b'a', b'z');
            s.insert_range(b'A', b'Z');
        }
        "digit" => s.insert_range(b'0', b'9'),
        "xdigit" => {
            s.insert_range(b'0', b'9');
            s.insert_range(b'a', b'f');
            s.insert_range(b'A', b'F');
        }
        "lower" => s.insert_range(b'a', b'z'),
        "upper" => s.insert_range(b'A', b'Z'),
        "space" => {
            for b in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
                s.insert(b);
            }
        }
        "punct" => {
            s.insert_range(b'!', b'/');
            s.insert_range(b':', b'@');
            s.insert_range(b'[', b'`');
            s.insert_range(b'{', b'~');
        }
        "word" => {
            // GNU extension, handy for \w-style classes.
            s.insert_range(b'0', b'9');
            s.insert_range(b'a', b'z');
            s.insert_range(b'A', b'Z');
            s.insert(b'_');
        }
        _ => return None,
    }
    Some(s)
}

/// Perl-style escape-class shorthand (`\d`, `\w`, `\s` and negations).
pub fn escape_class(c: u8) -> Option<ByteSet> {
    let (base, negate) = match c {
        b'd' => (posix_class("digit")?, false),
        b'D' => (posix_class("digit")?, true),
        b'w' => (posix_class("word")?, false),
        b'W' => (posix_class("word")?, true),
        b's' => (posix_class("space")?, false),
        b'S' => (posix_class("space")?, true),
        _ => return None,
    };
    let mut s = base;
    if negate {
        s.negate();
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = ByteSet::empty();
        s.insert(b'a');
        s.insert(0);
        s.insert(255);
        assert!(s.contains(b'a'));
        assert!(s.contains(0));
        assert!(s.contains(255));
        assert!(!s.contains(b'b'));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn range_and_negate() {
        let mut s = ByteSet::empty();
        s.insert_range(b'0', b'9');
        assert_eq!(s.len(), 10);
        s.negate();
        assert!(!s.contains(b'5'));
        assert!(s.contains(b'a'));
        assert_eq!(s.len(), 246);
    }

    #[test]
    fn posix_classes() {
        let alnum = posix_class("alnum").unwrap();
        assert!(alnum.contains(b'a') && alnum.contains(b'Z') && alnum.contains(b'0'));
        assert!(!alnum.contains(b'-'));
        assert_eq!(alnum.len(), 62);
        assert!(posix_class("bogus").is_none());
    }

    #[test]
    fn escape_classes() {
        let d = escape_class(b'd').unwrap();
        assert!(d.contains(b'7') && !d.contains(b'x'));
        let nd = escape_class(b'D').unwrap();
        assert!(!nd.contains(b'7') && nd.contains(b'x'));
        let w = escape_class(b'w').unwrap();
        assert!(w.contains(b'_'));
        assert!(escape_class(b'q').is_none());
    }

    #[test]
    fn case_folding() {
        let mut s = ByteSet::single(b'a');
        s.insert(b'Z');
        s.case_fold();
        assert!(s.contains(b'A') && s.contains(b'z'));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn union() {
        let mut a = ByteSet::single(b'x');
        a.union_with(&ByteSet::single(b'y'));
        assert!(a.contains(b'x') && a.contains(b'y'));
    }

    #[test]
    fn as_single_only_on_singletons() {
        assert_eq!(ByteSet::single(b'a').as_single(), Some(b'a'));
        assert_eq!(ByteSet::single(0).as_single(), Some(0));
        assert_eq!(ByteSet::single(255).as_single(), Some(255));
        assert_eq!(ByteSet::empty().as_single(), None);
        assert_eq!(ByteSet::full().as_single(), None);
        let mut two = ByteSet::single(b'a');
        two.insert(b'b');
        assert_eq!(two.as_single(), None);
        let mut far = ByteSet::single(1);
        far.insert(200);
        assert_eq!(far.as_single(), None);
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(ByteSet::full().len(), 256);
        assert!(ByteSet::empty().is_empty());
        assert!(!ByteSet::full().is_empty());
    }

    #[test]
    fn debug_format_shows_ranges() {
        let mut s = ByteSet::empty();
        s.insert_range(b'a', b'c');
        let dbg = format!("{s:?}");
        assert!(dbg.contains("0x61-0x63"), "{dbg}");
    }
}
