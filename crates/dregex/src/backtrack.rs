//! A deliberately naive backtracking matcher.
//!
//! This exists for two reasons only: (1) differential testing of the Pike
//! VM (both engines must agree on every input), and (2) the ablation bench
//! in DESIGN.md that quantifies why a linear-time engine matters when
//! patterns run over millions of passive-DNS names. Do **not** use it in the
//! pipeline: it is exponential on pathological patterns.

use crate::ast::Ast;
use crate::parser::{parse, ParseErr};

/// A regex matcher that interprets the AST directly with backtracking.
#[derive(Debug, Clone)]
pub struct BacktrackRegex {
    ast: Ast,
}

impl BacktrackRegex {
    /// Compile (parse) a pattern.
    pub fn new(pattern: &str) -> Result<Self, ParseErr> {
        Ok(BacktrackRegex {
            ast: parse(pattern)?,
        })
    }

    /// Unanchored search.
    pub fn is_match(&self, input: &str) -> bool {
        let bytes = input.as_bytes();
        for start in 0..=bytes.len() {
            if match_node(&self.ast, bytes, start, &mut |_| true) {
                return true;
            }
        }
        false
    }

    /// Anchored full match.
    pub fn is_full_match(&self, input: &str) -> bool {
        let bytes = input.as_bytes();
        match_node(&self.ast, bytes, 0, &mut |end| end == bytes.len())
    }
}

/// Continuation-passing matcher: `k(pos)` decides whether the rest of the
/// pattern (outside `node`) accepts from `pos`.
fn match_node(node: &Ast, input: &[u8], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match node {
        Ast::Empty => k(pos),
        Ast::Class(set) => pos < input.len() && set.contains(input[pos]) && k(pos + 1),
        Ast::AnchorStart => pos == 0 && k(pos),
        Ast::AnchorEnd => pos == input.len() && k(pos),
        Ast::Group(inner) => match_node(inner, input, pos, k),
        Ast::Concat(parts) => match_concat(parts, input, pos, k),
        Ast::Alternate(branches) => branches.iter().any(|b| match_node(b, input, pos, k)),
        Ast::Repeat { node, min, max } => match_repeat(node, *min, *max, input, pos, k),
    }
}

fn match_concat(parts: &[Ast], input: &[u8], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match parts.split_first() {
        None => k(pos),
        Some((head, tail)) => {
            match_node(head, input, pos, &mut |p| match_concat(tail, input, p, k))
        }
    }
}

fn match_repeat(
    node: &Ast,
    min: u32,
    max: Option<u32>,
    input: &[u8],
    pos: usize,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    if min > 0 {
        return match_node(node, input, pos, &mut |p| {
            match_repeat(node, min - 1, max.map(|m| m - 1), input, p, k)
        });
    }
    match max {
        Some(0) => k(pos),
        _ => {
            // Greedy: try one more iteration first, but guard against
            // zero-width loops (e.g. `(a?)*`) by requiring progress.
            let more = match_node(node, input, pos, &mut |p| {
                p > pos && match_repeat(node, 0, max.map(|m| m - 1), input, p, k)
            });
            more || k(pos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Regex;

    /// Both engines must agree on a corpus of (pattern, input) pairs.
    #[test]
    fn differential_against_pike_vm() {
        let patterns = [
            "abc",
            "^abc$",
            "a*b+c?",
            "(ab|cd)+",
            "[a-z0-9-]+",
            r"(.+)(\.iot\.)([[:alnum:]]+(-[[:alnum:]]+)+)?(\.amazonaws\.com\.$)",
            r"(.+\.|^)(azure-devices\.net\.$)",
            "a{2,4}",
            "(a?)*b",
            "[^.]+",
        ];
        let inputs = [
            "",
            "abc",
            "xabcy",
            "aaabbbc",
            "ababcd",
            "device.iot.us-east-1.amazonaws.com.",
            "iot.amazonaws.com.",
            "myhub.azure-devices.net.",
            "azure-devices.net.",
            "aaaa",
            "aa",
            "b",
            "x.y",
        ];
        for pat in patterns {
            let pike = Regex::new(pat).unwrap();
            let bt = BacktrackRegex::new(pat).unwrap();
            for input in inputs {
                assert_eq!(
                    pike.is_match(input),
                    bt.is_match(input),
                    "search disagreement: pattern {pat:?} input {input:?}"
                );
                assert_eq!(
                    pike.is_full_match(input),
                    bt.is_full_match(input),
                    "full-match disagreement: pattern {pat:?} input {input:?}"
                );
            }
        }
    }

    #[test]
    fn zero_width_loop_terminates() {
        let bt = BacktrackRegex::new("(a?)*b").unwrap();
        assert!(bt.is_match("b"));
        assert!(bt.is_match("aab"));
        assert!(!bt.is_match("aa"));
    }
}
