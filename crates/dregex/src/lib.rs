//! # iotmap-dregex — the domain-pattern regex engine
//!
//! §3.2 of the paper generates regular expressions for each IoT backend's
//! domain naming scheme (see the paper's Appendix A for examples such as
//! `(.+)(\.iot\.)([[:alnum:]]+(-[[:alnum:]]+)+)?(\.amazonaws\.com\.$)`)
//! and evaluates them against millions of passive-DNS names and TLS
//! certificate SANs. This crate implements the required subset of POSIX
//! extended regular expressions from scratch:
//!
//! * literals and escapes, `.` (any byte), anchors `^` / `$`
//! * character classes `[a-z0-9-]`, negation `[^...]`, POSIX classes
//!   `[[:alnum:]]`, `[[:alpha:]]`, `[[:digit:]]`, …
//! * grouping `(...)`, alternation `|`
//! * quantifiers `*`, `+`, `?`, `{m}`, `{m,}`, `{m,n}`
//! * a case-insensitive mode (DNS names are case-insensitive)
//!
//! Matching uses a Pike-style virtual machine over a compiled NFA program —
//! **linear time** in the input, no backtracking — because the discovery
//! pipeline evaluates every pattern against every observed domain name and
//! an exponential-time engine would be a correctness hazard on adversarial
//! names. An intentionally naive backtracking matcher is included (module
//! [`backtrack`]) solely as a differential-testing and benchmarking
//! baseline.
//!
//! The [`query`] module layers the paper's concrete query front-ends on
//! top: DNSDB *Flexible Search* (regex) and *Basic Search* (wildcard
//! RRset queries like `*.tencentdevices.com.`), and Censys certificate
//! string searches (`*.iot.us-east-1.amazonaws.com`).

pub mod ast;
pub mod backtrack;
pub mod classes;
pub mod compile;
pub mod literal;
pub mod parser;
pub mod prog;
pub mod query;
pub mod vm;

pub use ast::Ast;
pub use classes::ByteSet;
pub use parser::ParseErr;
pub use prog::Program;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
    /// Mandatory anchored literals (see [`literal`]), extracted once at
    /// compile time so the discovery matcher can prefilter with them.
    literal_prefix: Option<String>,
    literal_suffix: Option<String>,
}

impl Regex {
    /// Compile a pattern (case-sensitive).
    pub fn new(pattern: &str) -> Result<Self, ParseErr> {
        Self::with_options(pattern, false)
    }

    /// Compile a pattern, case-insensitively if requested. DNS matching
    /// should use `case_insensitive = true` (or pre-lowercase inputs).
    pub fn with_options(pattern: &str, case_insensitive: bool) -> Result<Self, ParseErr> {
        let ast = parser::parse(pattern)?;
        let program = compile::compile(&ast, case_insensitive);
        Ok(Regex {
            pattern: pattern.to_string(),
            program,
            literal_prefix: literal::literal_prefix(&ast, case_insensitive),
            literal_suffix: literal::literal_suffix(&ast, case_insensitive),
        })
    }

    /// Does the pattern match anywhere in `input` (unanchored search, like
    /// POSIX `grep`)? Anchors inside the pattern still bind to the input
    /// boundaries.
    pub fn is_match(&self, input: &str) -> bool {
        vm::search(&self.program, input.as_bytes())
    }

    /// Does the pattern match the *entire* input?
    pub fn is_full_match(&self, input: &str) -> bool {
        vm::match_anchored(&self.program, input.as_bytes())
    }

    /// Leftmost match range, if any. The end is the *earliest* accepting
    /// position (shortest match) — sufficient for the pipeline, which only
    /// needs boolean hits and hit locations.
    pub fn find(&self, input: &str) -> Option<(usize, usize)> {
        vm::find(&self.program, input.as_bytes())
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of compiled instructions (for diagnostics and benches).
    pub fn program_len(&self) -> usize {
        self.program.insts.len()
    }

    /// Text every match must start with, at the start of the input — or
    /// `None` when the pattern is not `^`-anchored or has no mandatory
    /// head literal. Lowercased for case-insensitive patterns.
    pub fn literal_prefix(&self) -> Option<&str> {
        self.literal_prefix.as_deref()
    }

    /// Text every match must end with, at the end of the input — or `None`
    /// when the pattern is not `$`-anchored or has no mandatory tail
    /// literal. Lowercased for case-insensitive patterns.
    pub fn literal_suffix(&self) -> Option<&str> {
        self.literal_suffix.as_deref()
    }
}

/// Several patterns compiled into one combined Pike-VM program: a single
/// scan of an input reports *which* patterns match it (see
/// [`compile::compile_set`] and [`vm::search_set`]). The discovery pipeline
/// uses this so one pass over a name answers all providers at once.
#[derive(Debug, Clone)]
pub struct PatternSet {
    patterns: Vec<String>,
    program: Program,
    entries: Vec<prog::SetEntry>,
}

impl PatternSet {
    /// Compile a set of patterns (case-sensitive).
    pub fn new<S: AsRef<str>>(patterns: &[S]) -> Result<Self, ParseErr> {
        Self::with_options(patterns, false)
    }

    /// Compile a set of patterns, case-insensitively if requested.
    pub fn with_options<S: AsRef<str>>(
        patterns: &[S],
        case_insensitive: bool,
    ) -> Result<Self, ParseErr> {
        let mut asts = Vec::with_capacity(patterns.len());
        for p in patterns {
            asts.push(parser::parse(p.as_ref())?);
        }
        let (program, entries) = compile::compile_set(&asts, case_insensitive);
        Ok(PatternSet {
            patterns: patterns.iter().map(|p| p.as_ref().to_string()).collect(),
            program,
            entries,
        })
    }

    /// Number of patterns in the set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the set holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Source pattern `i`.
    pub fn pattern(&self, i: usize) -> &str {
        &self.patterns[i]
    }

    /// Unanchored multi-pattern search: OR a hit into `matched[i]` for every
    /// pattern `i` that matches anywhere in `input`. Slots already `true`
    /// are skipped, so repeated calls accumulate over several inputs.
    pub fn matches_into(&self, input: &str, matched: &mut [bool]) {
        vm::search_set(&self.program, &self.entries, input.as_bytes(), matched);
    }

    /// Which patterns match anywhere in `input`? One `bool` per pattern.
    pub fn matches(&self, input: &str) -> Vec<bool> {
        let mut matched = vec![false; self.len()];
        self.matches_into(input, &mut matched);
        matched
    }

    /// Indices of the patterns that match anywhere in `input`, ascending.
    pub fn matched_ids(&self, input: &str) -> Vec<usize> {
        self.matches(input)
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(i))
            .collect()
    }

    /// Total compiled instructions across the set (diagnostics).
    pub fn program_len(&self) -> usize {
        self.program.insts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, input: &str) -> bool {
        Regex::new(pat).unwrap().is_match(input)
    }

    #[test]
    fn literal_match() {
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "ab"));
    }

    #[test]
    fn paper_amazon_pattern() {
        // From the paper's Appendix A (trailing-dot form as used by DNSDB).
        let re = Regex::new(r"(.+)(\.iot\.)([[:alnum:]]+(-[[:alnum:]]+)+)?(\.amazonaws\.com\.$)")
            .unwrap();
        assert!(re.is_match("a3k7examplehash.iot.us-east-1.amazonaws.com."));
        assert!(re.is_match("device.iot.eu-west-1.amazonaws.com."));
        assert!(!re.is_match("a3k7examplehash.iot.us-east-1.amazonaws.com.evil.org."));
    }

    #[test]
    fn paper_microsoft_pattern() {
        let re = Regex::new(r"(.+\.|^)(azure-devices\.net\.$)").unwrap();
        assert!(re.is_match("myhub.azure-devices.net."));
        assert!(re.is_match("azure-devices.net."));
        assert!(!re.is_match("azure-devices.net.example.com."));
    }

    #[test]
    fn paper_siemens_pattern() {
        let re = Regex::new(r".(\.eu1\.mindsphere\.io\.$)").unwrap();
        assert!(re.is_match("gateway.eu1.mindsphere.io."));
        assert!(!re.is_match(".eu1.mindsphere.io.")); // a real label char is required
    }

    #[test]
    fn case_insensitive_mode() {
        let re = Regex::with_options(r"mqtt\.googleapis\.com", true).unwrap();
        assert!(re.is_match("MQTT.GoogleAPIs.COM"));
        let cs = Regex::new(r"mqtt\.googleapis\.com").unwrap();
        assert!(!cs.is_match("MQTT.GoogleAPIs.COM"));
    }

    #[test]
    fn full_match_vs_search() {
        let re = Regex::new("ab+").unwrap();
        assert!(re.is_full_match("abbb"));
        assert!(!re.is_full_match("xabbb"));
        assert!(re.is_match("xabbb"));
    }

    #[test]
    fn find_leftmost() {
        let re = Regex::new("b+").unwrap();
        assert_eq!(re.find("aabbbcbb"), Some((2, 3))); // shortest-match end
        assert_eq!(re.find("zzz"), None);
    }

    #[test]
    fn pattern_set_reports_every_hit() {
        let set = PatternSet::new(&[
            r"(.+)\.azure-devices\.net\.$",
            r"^(mqtt|cloudiotdevice)\.googleapis\.com\.$",
            "iot",
            r"never\.matches\.example\.$",
        ])
        .unwrap();
        assert_eq!(set.len(), 4);
        assert_eq!(set.matched_ids("myhub.azure-devices.net."), vec![0]);
        assert_eq!(set.matched_ids("mqtt.googleapis.com."), vec![1]);
        assert_eq!(set.matched_ids("device.iot.example."), vec![2]);
        // One input can hit several patterns at once.
        assert_eq!(set.matched_ids("iot.azure-devices.net."), vec![0, 2]);
        assert!(set.matched_ids("unrelated.example.").is_empty());
    }

    #[test]
    fn pattern_set_agrees_with_individual_regexes() {
        let patterns = [
            r"(.+)(\.iot\.)([[:alnum:]]+(-[[:alnum:]]+)+)(\.amazonaws\.com\.$)",
            r"(.+\.|^)(azure-devices\.net\.$)",
            r"^(na|ca|eu|ap)\.airvantage\.net\.$",
            r"(.+)\.(eu1|eu2|us1|cn1)\.(mindsphere\.io\.$)",
            "a+b",
            "",
        ];
        let set = PatternSet::with_options(&patterns, true).unwrap();
        let singles: Vec<Regex> = patterns
            .iter()
            .map(|p| Regex::with_options(p, true).unwrap())
            .collect();
        for input in [
            "device.iot.us-east-1.amazonaws.com.",
            "MYHUB.AZURE-DEVICES.NET.",
            "eu.airvantage.net.",
            "na.airvantage.net.evil.",
            "plant7.eu2.mindsphere.io.",
            "aab",
            "",
            "x.y.z",
        ] {
            let got = set.matches(input);
            for (i, re) in singles.iter().enumerate() {
                assert_eq!(got[i], re.is_match(input), "pattern {i} on {input:?}");
            }
        }
    }

    #[test]
    fn pattern_set_accumulates_across_inputs() {
        let set = PatternSet::new(&["foo", "bar"]).unwrap();
        let mut matched = vec![false; 2];
        set.matches_into("a.foo.example", &mut matched);
        assert_eq!(matched, vec![true, false]);
        set.matches_into("b.bar.example", &mut matched);
        assert_eq!(matched, vec![true, true]);
    }

    #[test]
    fn regex_exposes_anchored_literals() {
        let re = Regex::new(r"(.+)\.iot\.sap\.$").unwrap();
        assert_eq!(re.literal_suffix(), Some(".iot.sap."));
        assert_eq!(re.literal_prefix(), None);
        let re = Regex::new(r"^iot-mqtts\.(.+)").unwrap();
        assert_eq!(re.literal_prefix(), Some("iot-mqtts."));
        assert_eq!(re.literal_suffix(), None);
    }

    #[test]
    fn pathological_pattern_is_linear() {
        // (a+)+b against a^n — classic catastrophic-backtracking case; the
        // Pike VM must handle it instantly.
        let re = Regex::new("(a+)+b").unwrap();
        let input = "a".repeat(10_000);
        assert!(!re.is_match(&input));
        assert!(re.is_match(&format!("{input}b")));
    }
}

#[cfg(all(test, feature = "heavy-tests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser returns Ok/Err but never panics, and anything that
        /// compiles can be executed against arbitrary inputs.
        #[test]
        fn parse_and_match_never_panic(pattern in "[a-z0-9.+*?()\\[\\]|^$\\\\{},:-]{0,24}", input in "[a-z0-9.-]{0,32}") {
            if let Ok(re) = Regex::new(&pattern) {
                let _ = re.is_match(&input);
                let _ = re.is_full_match(&input);
                let _ = re.find(&input);
            }
        }

        /// A full match implies a search match; a find implies a search hit.
        #[test]
        fn match_relations(input in "[a-z0-9.-]{0,32}") {
            for pattern in ["[a-z]+", r"^[a-z0-9]+\.", "a.*z", "x|y|z"] {
                let re = Regex::new(pattern).unwrap();
                if re.is_full_match(&input) {
                    prop_assert!(re.is_match(&input), "{pattern} vs {input:?}");
                }
                prop_assert_eq!(re.find(&input).is_some(), re.is_match(&input));
            }
        }
    }
}
