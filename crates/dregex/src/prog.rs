//! Compiled NFA programs.

use crate::classes::ByteSet;

/// One NFA instruction. Program counters are indices into
/// [`Program::insts`].
#[derive(Debug, Clone)]
pub enum Inst {
    /// Consume one byte if it is in the set, then continue at `pc + 1`.
    Class(ByteSet),
    /// Try `a` first, then `b` (priority is irrelevant for boolean
    /// matching but kept for leftmost `find`).
    Split(u32, u32),
    /// Unconditional jump.
    Jmp(u32),
    /// Zero-width assertion: start of input.
    AssertStart,
    /// Zero-width assertion: end of input.
    AssertEnd,
    /// Accept.
    Match,
    /// Accept for pattern `id` of a combined multi-pattern program (see
    /// [`crate::compile::compile_set`]).
    MatchId(u32),
}

/// Per-pattern entry point of a combined multi-pattern program: where the
/// pattern's instructions start and whether every one of its matches must
/// begin at the start of input.
#[derive(Debug, Clone, Copy)]
pub struct SetEntry {
    pub start: u32,
    pub anchored_start: bool,
}

/// A compiled regex program.
#[derive(Debug, Clone)]
pub struct Program {
    pub insts: Vec<Inst>,
    /// True when the pattern begins with `^` on every path — used to skip
    /// the unanchored-search start loop.
    pub anchored_start: bool,
}

impl Program {
    /// Rough memory footprint, for diagnostics.
    pub fn size_bytes(&self) -> usize {
        self.insts.len() * std::mem::size_of::<Inst>()
    }
}
