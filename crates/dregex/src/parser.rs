//! Recursive-descent parser for the POSIX-extended regex subset.

use crate::ast::Ast;
use crate::classes::{escape_class, posix_class, ByteSet};
use std::fmt;

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseErr {
    pub pos: usize,
    pub message: String,
}

impl ParseErr {
    fn new(pos: usize, message: impl Into<String>) -> Self {
        ParseErr {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.pos, self.message
        )
    }
}

impl std::error::Error for ParseErr {}

/// Upper bound on `{m,n}` repetition counts, to keep compiled programs small.
const MAX_REPEAT: u32 = 1000;

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

/// Parse a pattern into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseErr> {
    let mut p = Parser {
        input: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.alternation()?;
    if p.pos != p.input.len() {
        return Err(ParseErr::new(p.pos, "unexpected ')'"));
    }
    Ok(ast)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// alternation := concat ('|' concat)*
    fn alternation(&mut self) -> Result<Ast, ParseErr> {
        let mut branches = vec![self.concat()?];
        while self.eat(b'|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alternate(branches)
        })
    }

    /// concat := repeated*
    fn concat(&mut self) -> Result<Ast, ParseErr> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeated()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    /// repeated := atom quantifier?
    fn repeated(&mut self) -> Result<Ast, ParseErr> {
        let start = self.pos;
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some(b'*') => {
                self.bump();
                (0, None)
            }
            Some(b'+') => {
                self.bump();
                (1, None)
            }
            Some(b'?') => {
                self.bump();
                (0, Some(1))
            }
            Some(b'{') => {
                // `{` is only a quantifier when it parses as one; otherwise
                // treat it as a literal (common POSIX behaviour).
                if let Some(bounds) = self.try_bounds()? {
                    bounds
                } else {
                    return Ok(atom);
                }
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd) {
            return Err(ParseErr::new(start, "cannot repeat an anchor"));
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    /// Try to parse `{m}`, `{m,}`, or `{m,n}` at the current position.
    /// Returns `None` (without consuming) when the braces are not a valid
    /// quantifier.
    fn try_bounds(&mut self) -> Result<Option<(u32, Option<u32>)>, ParseErr> {
        let save = self.pos;
        assert_eq!(self.bump(), Some(b'{'));
        let min = match self.number() {
            Some(n) => n,
            None => {
                self.pos = save;
                return Ok(None);
            }
        };
        let result = if self.eat(b',') {
            match self.number() {
                Some(max) => (min, Some(max)),
                None => (min, None),
            }
        } else {
            (min, Some(min))
        };
        if !self.eat(b'}') {
            self.pos = save;
            return Ok(None);
        }
        if let (min, Some(max)) = result {
            if max < min {
                return Err(ParseErr::new(save, "repetition bounds out of order"));
            }
        }
        if result.0 > MAX_REPEAT || result.1.is_some_and(|m| m > MAX_REPEAT) {
            return Err(ParseErr::new(save, "repetition bound too large"));
        }
        Ok(Some(result))
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    /// atom := group | class | anchor | escape | literal
    fn atom(&mut self) -> Result<Ast, ParseErr> {
        let pos = self.pos;
        match self.bump() {
            None => Err(ParseErr::new(pos, "unexpected end of pattern")),
            Some(b'(') => {
                let inner = self.alternation()?;
                if !self.eat(b')') {
                    return Err(ParseErr::new(pos, "unclosed group"));
                }
                Ok(Ast::Group(Box::new(inner)))
            }
            Some(b')') => Err(ParseErr::new(pos, "unmatched ')'")),
            Some(b'[') => self.class(pos),
            Some(b'^') => Ok(Ast::AnchorStart),
            Some(b'$') => Ok(Ast::AnchorEnd),
            Some(b'.') => Ok(Ast::Class(ByteSet::full())),
            Some(b'*') | Some(b'+') | Some(b'?') => {
                Err(ParseErr::new(pos, "quantifier with nothing to repeat"))
            }
            Some(b'\\') => {
                let c = self
                    .bump()
                    .ok_or_else(|| ParseErr::new(pos, "trailing backslash"))?;
                if let Some(set) = escape_class(c) {
                    Ok(Ast::Class(set))
                } else {
                    // Any other escaped byte is a literal (covers \. \\ \/ …).
                    Ok(Ast::Class(ByteSet::single(c)))
                }
            }
            Some(b) => Ok(Ast::Class(ByteSet::single(b))),
        }
    }

    /// class := '[' '^'? item+ ']'
    fn class(&mut self, open_pos: usize) -> Result<Ast, ParseErr> {
        let negated = self.eat(b'^');
        let mut set = ByteSet::empty();
        let mut first = true;
        loop {
            let pos = self.pos;
            let b = self
                .bump()
                .ok_or_else(|| ParseErr::new(open_pos, "unclosed character class"))?;
            match b {
                b']' if !first => break,
                b'[' if self.peek() == Some(b':') => {
                    // POSIX class [:name:]
                    self.bump(); // ':'
                    let name_start = self.pos;
                    while self.peek().is_some_and(|c| c.is_ascii_lowercase()) {
                        self.bump();
                    }
                    let name = std::str::from_utf8(&self.input[name_start..self.pos])
                        .expect("ASCII slice");
                    if !(self.eat(b':') && self.eat(b']')) {
                        return Err(ParseErr::new(pos, "malformed POSIX class"));
                    }
                    let cls = posix_class(name).ok_or_else(|| {
                        ParseErr::new(pos, format!("unknown POSIX class [:{name}:]"))
                    })?;
                    set.union_with(&cls);
                }
                b'\\' => {
                    let c = self
                        .bump()
                        .ok_or_else(|| ParseErr::new(pos, "trailing backslash in class"))?;
                    if let Some(cls) = escape_class(c) {
                        set.union_with(&cls);
                    } else {
                        self.class_member(&mut set, c)?;
                    }
                }
                _ => {
                    self.class_member(&mut set, b)?;
                }
            }
            first = false;
        }
        if set.is_empty() {
            return Err(ParseErr::new(open_pos, "empty character class"));
        }
        if negated {
            set.negate();
        }
        Ok(Ast::Class(set))
    }

    /// Add a literal class member, handling `a-z` ranges. `lo` has already
    /// been consumed.
    fn class_member(&mut self, set: &mut ByteSet, lo: u8) -> Result<(), ParseErr> {
        // A '-' is a range operator only when not last-in-class.
        if self.peek() == Some(b'-') && self.input.get(self.pos + 1) != Some(&b']') {
            let dash_pos = self.pos;
            self.bump(); // '-'
            let hi = self
                .bump()
                .ok_or_else(|| ParseErr::new(dash_pos, "unterminated range"))?;
            let hi = if hi == b'\\' {
                self.bump()
                    .ok_or_else(|| ParseErr::new(dash_pos, "trailing backslash in range"))?
            } else {
                hi
            };
            if hi < lo {
                return Err(ParseErr::new(dash_pos, "range out of order"));
            }
            set.insert_range(lo, hi);
        } else {
            set.insert(lo);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_patterns_without_error() {
        // Shapes taken from Appendix A of the paper.
        let patterns = [
            r"(.+)(\.iot\.)([[:alnum:]]+(-[[:alnum:]]+)+)?(\.amazonaws\.com\.$)",
            r"(.+\.|^)(iot\.)([[:alnum:]]+(-[[:alnum:]]+)*\.)?(oraclecloud\.com\.$)",
            r".+\.(iot\.)([[:alnum:]]+(-[[:alnum:]]+)*\.)?(baidubce\.com\.$)",
            r".(\.eu1\.mindsphere\.io\.$)",
            r"(.+\.|^)(na\.airvantage\.net\.$)",
            r"(.+\.|^)(bosch-iot-hub\.com\.$)",
            r"(.+\.|^)(internetofthings\.ibmcloud\.com\.$)",
            r"(.+\.|^)(azure-devices\.net\.$)",
            r"(.+\.|^)(tencentdevices\.com\.$)",
        ];
        for p in patterns {
            parse(p).unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_patterns() {
        assert!(parse("(").is_err());
        assert!(parse(")").is_err());
        assert!(parse("a)").is_err());
        assert!(parse("[").is_err());
        assert!(parse("[]").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("a\\").is_err());
        assert!(parse("^*").is_err());
        assert!(parse("[z-a]").is_err());
        assert!(parse("a{3,2}").is_err());
        assert!(parse("[[:nope:]]").is_err());
    }

    #[test]
    fn braces_fall_back_to_literal() {
        // "{x}" is not a quantifier; POSIX treats it literally.
        let ast = parse("a{x}").unwrap();
        assert!(matches!(ast, Ast::Concat(_)));
    }

    #[test]
    fn bounded_repetition_forms() {
        assert!(matches!(
            parse("a{3}").unwrap(),
            Ast::Repeat {
                min: 3,
                max: Some(3),
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,}").unwrap(),
            Ast::Repeat {
                min: 2,
                max: None,
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,5}").unwrap(),
            Ast::Repeat {
                min: 2,
                max: Some(5),
                ..
            }
        ));
        assert!(parse(&format!("a{{{}}}", 100_000)).is_err());
    }

    #[test]
    fn class_with_leading_bracket_or_dash() {
        // ']' first in class is a literal member; '-' last is literal.
        let ast = parse("[]a]").unwrap();
        if let Ast::Class(set) = ast {
            assert!(set.contains(b']') && set.contains(b'a'));
        } else {
            panic!("expected class");
        }
        let ast = parse("[a-]").unwrap();
        if let Ast::Class(set) = ast {
            assert!(set.contains(b'a') && set.contains(b'-'));
        } else {
            panic!("expected class");
        }
    }

    #[test]
    fn negated_class() {
        if let Ast::Class(set) = parse("[^0-9]").unwrap() {
            assert!(!set.contains(b'5') && set.contains(b'a'));
        } else {
            panic!("expected class");
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input() {
        // A grab-bag of hostile inputs; the parser must return Ok or Err,
        // never panic. (The proptest in tests/ widens this further.)
        for input in [
            "(((((",
            ")))))",
            "[[[[[",
            "]]]]]",
            "a{999999999999}",
            "\\",
            "|||",
            "[a-\\]",
            "(?:x)",
            "a**",
            "^^^$$$",
            "[[:alpha:]",
            "{1,2}",
            "\\Q\\E",
        ] {
            let _ = parse(input);
        }
    }

    #[test]
    fn empty_alternation_branch() {
        // "a|" has an empty second branch — matches "a" or "".
        let ast = parse("a|").unwrap();
        assert!(matches!(ast, Ast::Alternate(ref v) if v.len() == 2));
    }
}
