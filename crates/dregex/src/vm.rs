//! Pike-style NFA virtual machine: linear-time matching.
//!
//! The VM advances a set of threads (program counters) in lock-step over the
//! input. Each input byte is examined once per live thread, and thread sets
//! are deduplicated per step, giving `O(input × program)` worst-case time —
//! immune to the catastrophic backtracking that patterns like `(a+)+b`
//! trigger in naive engines.

use crate::prog::{Inst, Program, SetEntry};

/// A deduplicated list of thread program counters.
struct ThreadList {
    dense: Vec<u32>,
    /// Generation-stamped sparse membership to avoid clearing per step.
    sparse: Vec<u32>,
    generation: u32,
}

impl ThreadList {
    fn new(n: usize) -> Self {
        ThreadList {
            dense: Vec::with_capacity(n),
            sparse: vec![0; n],
            generation: 0,
        }
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.generation += 1;
    }

    fn contains(&self, pc: u32) -> bool {
        self.sparse[pc as usize] == self.generation
    }

    fn insert(&mut self, pc: u32) {
        self.sparse[pc as usize] = self.generation;
        self.dense.push(pc);
    }
}

/// Add a thread and transitively follow zero-width instructions.
/// `at_start` / `at_end` describe the position for anchor assertions.
fn add_thread(prog: &Program, list: &mut ThreadList, pc: u32, at_start: bool, at_end: bool) {
    if list.contains(pc) {
        return;
    }
    list.insert(pc);
    match prog.insts[pc as usize] {
        Inst::Jmp(t) => add_thread(prog, list, t, at_start, at_end),
        Inst::Split(a, b) => {
            add_thread(prog, list, a, at_start, at_end);
            add_thread(prog, list, b, at_start, at_end);
        }
        Inst::AssertStart => {
            if at_start {
                add_thread(prog, list, pc + 1, at_start, at_end);
            }
        }
        Inst::AssertEnd => {
            if at_end {
                add_thread(prog, list, pc + 1, at_start, at_end);
            }
        }
        Inst::Class(_) | Inst::Match | Inst::MatchId(_) => {}
    }
}

/// Run the VM. `start_anywhere` injects a fresh thread at every input
/// position (unanchored search). Returns the end position of the first
/// discovered match (earliest end), or `None`.
///
/// `steps` accumulates the number of thread-steps executed (one per live
/// thread per input byte) so callers can report `dregex.vm.steps` once
/// per exec instead of once per byte.
fn run(
    prog: &Program,
    input: &[u8],
    start_pos: usize,
    start_anywhere: bool,
    steps: &mut u64,
) -> Option<usize> {
    let n = prog.insts.len();
    let mut clist = ThreadList::new(n);
    let mut nlist = ThreadList::new(n);
    clist.clear();
    nlist.clear();

    let mut pos = start_pos;
    add_thread(prog, &mut clist, 0, pos == 0, pos == input.len());

    loop {
        let at_end = pos == input.len();
        // Check for accepting threads at this position.
        for &pc in &clist.dense {
            if matches!(prog.insts[pc as usize], Inst::Match) {
                return Some(pos);
            }
        }
        if at_end {
            return None;
        }
        let byte = input[pos];
        nlist.clear();
        let next_at_start = false;
        let next_at_end = pos + 1 == input.len();
        *steps += clist.dense.len() as u64;
        for i in 0..clist.dense.len() {
            let pc = clist.dense[i];
            if let Inst::Class(ref set) = prog.insts[pc as usize] {
                if set.contains(byte) {
                    add_thread(prog, &mut nlist, pc + 1, next_at_start, next_at_end);
                }
            }
        }
        pos += 1;
        std::mem::swap(&mut clist, &mut nlist);
        if start_anywhere && !prog.anchored_start {
            // Inject a new starting thread at this position.
            add_thread(prog, &mut clist, 0, pos == 0, pos == input.len());
        }
        if clist.dense.is_empty() {
            return None;
        }
    }
}

/// Unanchored search: does the pattern match anywhere?
pub fn search(prog: &Program, input: &[u8]) -> bool {
    let mut steps = 0u64;
    let matched = run(prog, input, 0, true, &mut steps).is_some();
    flush_vm_metrics(steps);
    matched
}

/// Anchored match: does the pattern match the entire input?
pub fn match_anchored(prog: &Program, input: &[u8]) -> bool {
    // Full match = a match starting at 0 that ends exactly at input end.
    // Scan match ends from position 0 only.
    let mut steps = 0u64;
    let n = prog.insts.len();
    let mut clist = ThreadList::new(n);
    let mut nlist = ThreadList::new(n);
    clist.clear();
    nlist.clear();
    add_thread(prog, &mut clist, 0, true, input.is_empty());
    for pos in 0..=input.len() {
        let at_end = pos == input.len();
        if at_end {
            flush_vm_metrics(steps);
            return clist
                .dense
                .iter()
                .any(|&pc| matches!(prog.insts[pc as usize], Inst::Match));
        }
        let byte = input[pos];
        nlist.clear();
        let next_at_end = pos + 1 == input.len();
        steps += clist.dense.len() as u64;
        for i in 0..clist.dense.len() {
            let pc = clist.dense[i];
            if let Inst::Class(ref set) = prog.insts[pc as usize] {
                if set.contains(byte) {
                    add_thread(prog, &mut nlist, pc + 1, false, next_at_end);
                }
            }
        }
        std::mem::swap(&mut clist, &mut nlist);
        if clist.dense.is_empty() {
            flush_vm_metrics(steps);
            return false;
        }
    }
    flush_vm_metrics(steps);
    false
}

/// Multi-pattern unanchored search over a combined program (see
/// [`crate::compile::compile_set`]): one lock-step scan of `input` decides,
/// for every pattern at once, whether it matches anywhere. `matched` must
/// have one slot per pattern (parallel to `entries`); hits are OR-ed in, so
/// callers can accumulate over several inputs. Patterns already `true` on
/// entry are not re-searched.
pub fn search_set(prog: &Program, entries: &[SetEntry], input: &[u8], matched: &mut [bool]) {
    debug_assert_eq!(entries.len(), matched.len());
    if matched.iter().all(|&m| m) {
        return;
    }
    let n = prog.insts.len();
    let mut clist = ThreadList::new(n);
    let mut nlist = ThreadList::new(n);
    clist.clear();
    nlist.clear();
    let mut steps = 0u64;
    let mut pos = 0usize;
    for (e, &done) in entries.iter().zip(matched.iter()) {
        if !done {
            add_thread(prog, &mut clist, e.start, true, input.is_empty());
        }
    }
    loop {
        let at_end = pos == input.len();
        // Harvest accepts at this position.
        for &pc in &clist.dense {
            if let Inst::MatchId(id) = prog.insts[pc as usize] {
                matched[id as usize] = true;
            }
        }
        if at_end || matched.iter().all(|&m| m) {
            break;
        }
        let byte = input[pos];
        nlist.clear();
        let next_at_end = pos + 1 == input.len();
        steps += clist.dense.len() as u64;
        for i in 0..clist.dense.len() {
            let pc = clist.dense[i];
            if let Inst::Class(ref set) = prog.insts[pc as usize] {
                if set.contains(byte) {
                    add_thread(prog, &mut nlist, pc + 1, false, next_at_end);
                }
            }
        }
        pos += 1;
        std::mem::swap(&mut clist, &mut nlist);
        // Unanchored patterns restart at every position; anchored ones only
        // ever start at position 0.
        let now_at_end = pos == input.len();
        for (e, &done) in entries.iter().zip(matched.iter()) {
            if !done && !e.anchored_start {
                add_thread(prog, &mut clist, e.start, false, now_at_end);
            }
        }
        if clist.dense.is_empty() {
            break;
        }
    }
    flush_vm_metrics(steps);
}

/// Report one VM execution's accumulated step count.
fn flush_vm_metrics(steps: u64) {
    iotmap_obs::count!("dregex.vm.execs");
    iotmap_obs::count!("dregex.vm.steps", steps);
}

/// Leftmost match: `(start, end)` of the first match, shortest end for the
/// leftmost start.
pub fn find(prog: &Program, input: &[u8]) -> Option<(usize, usize)> {
    let mut steps = 0u64;
    let mut found = None;
    for start in 0..=input.len() {
        if let Some(end) = run(prog, input, start, false, &mut steps) {
            found = Some((start, end));
            break;
        }
        if prog.anchored_start {
            break;
        }
    }
    flush_vm_metrics(steps);
    found
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    #[test]
    fn search_finds_interior_matches() {
        let re = Regex::new("iot").unwrap();
        assert!(re.is_match("device.iot.example"));
        assert!(!re.is_match("device.example"));
    }

    #[test]
    fn anchors_bind_input_boundaries() {
        let re = Regex::new("^abc$").unwrap();
        assert!(re.is_match("abc"));
        assert!(!re.is_match("xabc"));
        assert!(!re.is_match("abcx"));
    }

    #[test]
    fn dollar_mid_pattern_only_matches_at_end() {
        let re = Regex::new(r"com\.$").unwrap();
        assert!(re.is_match("example.com."));
        assert!(!re.is_match("example.com.evil"));
    }

    #[test]
    fn find_reports_shortest_leftmost() {
        let re = Regex::new("a+").unwrap();
        // Leftmost start 1; shortest end there is 2 (thread set reports
        // earliest accepting position).
        assert_eq!(re.find("baaa"), Some((1, 2)));
    }

    #[test]
    fn full_match_empty_input() {
        assert!(Regex::new("a*").unwrap().is_full_match(""));
        assert!(!Regex::new("a+").unwrap().is_full_match(""));
        assert!(Regex::new("").unwrap().is_full_match(""));
    }

    #[test]
    fn anchored_start_optimization_still_correct() {
        let re = Regex::new("^b").unwrap();
        assert!(!re.is_match("ab"));
        assert!(re.is_match("ba"));
    }

    #[test]
    fn byte_level_matching_handles_dots_in_domains() {
        let re = Regex::new(r"^[^.]+\.iot\.sap\.$").unwrap();
        assert!(re.is_match("tenant42.iot.sap."));
        assert!(!re.is_match("a.b.iot.sap."));
    }
}
