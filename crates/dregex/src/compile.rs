//! AST → NFA program compiler (Thompson construction).

use crate::ast::Ast;
use crate::prog::{Inst, Program, SetEntry};

/// Compile an AST into an NFA program, optionally case-folding all classes.
pub fn compile(ast: &Ast, case_insensitive: bool) -> Program {
    let mut c = Compiler {
        insts: Vec::new(),
        case_insensitive,
    };
    c.emit_node(ast);
    c.insts.push(Inst::Match);
    let anchored_start = starts_anchored(ast);
    Program {
        insts: c.insts,
        anchored_start,
    }
}

/// Compile several patterns into one combined program. Pattern `i`'s accept
/// instruction is [`Inst::MatchId`]`(i)` and its instructions start at the
/// returned entry's `start` pc, so a multi-pattern VM run (see
/// [`crate::vm::search_set`]) can report *which* patterns hit in a single
/// scan of the input.
pub fn compile_set(asts: &[Ast], case_insensitive: bool) -> (Program, Vec<SetEntry>) {
    let mut c = Compiler {
        insts: Vec::new(),
        case_insensitive,
    };
    let mut entries = Vec::with_capacity(asts.len());
    for (i, ast) in asts.iter().enumerate() {
        let start = c.pc();
        c.emit_node(ast);
        c.insts.push(Inst::MatchId(i as u32));
        entries.push(SetEntry {
            start,
            anchored_start: starts_anchored(ast),
        });
    }
    let anchored_start = entries.iter().all(|e| e.anchored_start);
    (
        Program {
            insts: c.insts,
            anchored_start,
        },
        entries,
    )
}

/// Conservatively determine whether every match must begin with `^`.
fn starts_anchored(ast: &Ast) -> bool {
    match ast {
        Ast::AnchorStart => true,
        Ast::Group(inner) => starts_anchored(inner),
        Ast::Concat(parts) => parts.first().is_some_and(starts_anchored),
        Ast::Alternate(parts) => !parts.is_empty() && parts.iter().all(starts_anchored),
        _ => false,
    }
}

struct Compiler {
    insts: Vec<Inst>,
    case_insensitive: bool,
}

impl Compiler {
    fn pc(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Emit a placeholder instruction to patch later.
    fn placeholder(&mut self) -> usize {
        let at = self.insts.len();
        self.insts.push(Inst::Jmp(u32::MAX));
        at
    }

    fn emit_node(&mut self, node: &Ast) {
        match node {
            Ast::Empty => {}
            Ast::Class(set) => {
                let mut set = *set;
                if self.case_insensitive {
                    set.case_fold();
                }
                self.insts.push(Inst::Class(set));
            }
            Ast::AnchorStart => self.insts.push(Inst::AssertStart),
            Ast::AnchorEnd => self.insts.push(Inst::AssertEnd),
            Ast::Group(inner) => self.emit_node(inner),
            Ast::Concat(parts) => {
                for p in parts {
                    self.emit_node(p);
                }
            }
            Ast::Alternate(branches) => self.emit_alternate(branches),
            Ast::Repeat { node, min, max } => self.emit_repeat(node, *min, *max),
        }
    }

    fn emit_alternate(&mut self, branches: &[Ast]) {
        // Chain of Splits: split(b1, rest); b1; jmp end; split(b2, rest)...
        let mut jump_ends = Vec::new();
        for (i, branch) in branches.iter().enumerate() {
            if i + 1 < branches.len() {
                let split_at = self.placeholder();
                let b_start = self.pc();
                self.emit_node(branch);
                jump_ends.push(self.placeholder());
                let next = self.pc();
                self.insts[split_at] = Inst::Split(b_start, next);
            } else {
                self.emit_node(branch);
            }
        }
        let end = self.pc();
        for j in jump_ends {
            self.insts[j] = Inst::Jmp(end);
        }
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) {
        // Mandatory prefix: `min` copies.
        for _ in 0..min {
            self.emit_node(node);
        }
        match max {
            None => {
                if min == 0 {
                    // `e*`: split(loop, end); loop: e; jmp split
                    let split_at = self.placeholder();
                    let body = self.pc();
                    self.emit_node(node);
                    self.insts.push(Inst::Jmp(split_at as u32));
                    let end = self.pc();
                    self.insts[split_at] = Inst::Split(body, end);
                } else {
                    // `e{min,}`: after the mandatory copies, loop on the last.
                    // split(body, end); body: e; jmp split
                    let split_at = self.placeholder();
                    let body = self.pc();
                    self.emit_node(node);
                    self.insts.push(Inst::Jmp(split_at as u32));
                    let end = self.pc();
                    self.insts[split_at] = Inst::Split(body, end);
                }
            }
            Some(max) => {
                // `max - min` optional copies: each is split(e, skip-to-end).
                let mut splits = Vec::new();
                for _ in min..max {
                    let split_at = self.placeholder();
                    splits.push(split_at);
                    let body = self.pc();
                    self.emit_node(node);
                    // Patch split target lazily: first arm is body.
                    self.insts[split_at] = Inst::Split(body, u32::MAX);
                }
                let end = self.pc();
                for s in splits {
                    if let Inst::Split(body, _) = self.insts[s] {
                        self.insts[s] = Inst::Split(body, end);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::vm;

    fn prog(pat: &str) -> Program {
        compile(&parse(pat).unwrap(), false)
    }

    fn matches(pat: &str, input: &str) -> bool {
        vm::search(&prog(pat), input.as_bytes())
    }

    #[test]
    fn star_plus_question() {
        assert!(matches("^ab*c$", "ac"));
        assert!(matches("^ab*c$", "abbbc"));
        assert!(!matches("^ab+c$", "ac"));
        assert!(matches("^ab+c$", "abc"));
        assert!(matches("^ab?c$", "ac"));
        assert!(matches("^ab?c$", "abc"));
        assert!(!matches("^ab?c$", "abbc"));
    }

    #[test]
    fn bounded_repeats() {
        assert!(matches("^a{3}$", "aaa"));
        assert!(!matches("^a{3}$", "aa"));
        assert!(!matches("^a{3}$", "aaaa"));
        assert!(matches("^a{2,4}$", "aa"));
        assert!(matches("^a{2,4}$", "aaaa"));
        assert!(!matches("^a{2,4}$", "aaaaa"));
        assert!(matches("^a{2,}$", "aaaaaaa"));
        assert!(!matches("^a{2,}$", "a"));
    }

    #[test]
    fn alternation_priorities() {
        assert!(matches("^(cat|dog|bird)$", "dog"));
        assert!(matches("^(cat|dog|bird)$", "bird"));
        assert!(!matches("^(cat|dog|bird)$", "fish"));
    }

    #[test]
    fn nested_groups() {
        assert!(matches("^(a(b|c))+$", "abacab"));
        assert!(!matches("^(a(b|c))+$", "abd"));
    }

    #[test]
    fn anchored_start_detection() {
        assert!(prog("^abc").anchored_start);
        assert!(prog("(^a|^b)").anchored_start);
        assert!(!prog("abc").anchored_start);
        assert!(!prog("(^a|b)").anchored_start);
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(matches("", ""));
        assert!(matches("", "anything"));
    }

    #[test]
    fn repeat_of_group_with_alternation() {
        // ([[:alnum:]]+(-[[:alnum:]]+)*)? — region codes like "us-east-1".
        let pat = r"^([[:alnum:]]+(-[[:alnum:]]+)*)?$";
        assert!(matches(pat, ""));
        assert!(matches(pat, "useast1"));
        assert!(matches(pat, "us-east-1"));
        assert!(!matches(pat, "us--east")); // empty middle label
        assert!(!matches(pat, "-east"));
    }
}
