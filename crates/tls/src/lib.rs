//! # iotmap-tls — certificates and handshake behaviour
//!
//! The paper's first discovery channel is TLS certificates collected by
//! Internet-wide scans (§3.3). Whether that channel works at all depends on
//! server-side TLS behaviour that this crate models explicitly:
//!
//! * Most backends present a **default certificate** whose SANs reveal the
//!   IoT domain (Censys finds 100% of Microsoft/SAP/Tencent IPs this way).
//! * Google **requires SNI**: a scanner that connects without a server name
//!   receives a generic certificate, so "we identify less than 2% of the
//!   Google IPs" via certificates.
//! * Amazon's MQTT endpoints **require a client certificate**; without one
//!   "the TLS handshake will fail" and no certificate is harvested.
//!
//! Certificates here are "X.509-lite": subject, SAN list (with wildcard
//! support), validity window, issuer — the fields the methodology consumes.

pub mod cert;
pub mod endpoint;
pub mod handshake;

pub use cert::{Certificate, SanName};
pub use endpoint::{ClientAuth, SniPolicy, TlsEndpoint};
pub use handshake::{handshake, ClientHello, HandshakeOutcome};
