//! TLS handshake simulation.
//!
//! A handshake is a pure function of the endpoint configuration and the
//! client hello — no sockets, no crypto, just the decision tree that
//! determines what a scanner harvests.

use crate::cert::Certificate;
use crate::endpoint::{ClientAuth, SniPolicy, TlsEndpoint};
use iotmap_nettypes::{DomainName, SimTime};
use std::sync::Arc;

/// What the client presents.
#[derive(Debug, Clone, Default)]
pub struct ClientHello {
    /// SNI server name, if any. Internet-wide scanners typically send none
    /// (they do not know which name to ask for — that is the point).
    pub sni: Option<DomainName>,
    /// Whether the client can complete mutual TLS.
    pub has_client_cert: bool,
}

impl ClientHello {
    /// A scanner's hello: no SNI, no client certificate.
    pub fn anonymous() -> Self {
        ClientHello::default()
    }

    /// A hello with a server name (e.g. a device that knows its endpoint).
    pub fn with_sni(name: DomainName) -> Self {
        ClientHello {
            sni: Some(name),
            has_client_cert: false,
        }
    }
}

/// Handshake result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeOutcome {
    /// Completed; the server presented this certificate.
    Complete(Arc<Certificate>),
    /// The server presented a certificate but then required client
    /// authentication the client could not provide. The certificate **was
    /// observed** before the failure (TLS ≤1.2 sends Certificate before
    /// CertificateRequest completes), but the session is unusable. For the
    /// paper's purposes, scanners like Censys record such certificates when
    /// the server sends them; strict-mTLS deployments that abort earlier
    /// are modelled with [`HandshakeOutcome::Failed`].
    ClientAuthRequired(Arc<Certificate>),
    /// Aborted without any certificate.
    Failed(HandshakeFailure),
}

/// Why a handshake failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeFailure {
    /// Endpoint rejects clients that send no SNI.
    SniRequired,
    /// Server certificate expired / not yet valid at connect time.
    CertificateExpired,
    /// Mutual TLS strictly enforced before certificate exposure (TLS 1.3
    /// encrypts the server certificate; without a client cert nothing
    /// useful is observed).
    ClientCertRequired,
}

impl HandshakeOutcome {
    /// The certificate a *scanner* would record from this outcome, if any.
    pub fn observed_certificate(&self) -> Option<&Certificate> {
        self.observed_certificate_shared().map(Arc::as_ref)
    }

    /// Shared handle on the observed certificate, for callers that store
    /// it (scan records keep the `Arc` instead of copying the SAN list).
    pub fn observed_certificate_shared(&self) -> Option<&Arc<Certificate>> {
        match self {
            HandshakeOutcome::Complete(c) => Some(c),
            HandshakeOutcome::ClientAuthRequired(_) => None,
            HandshakeOutcome::Failed(_) => None,
        }
    }
}

/// Simulate a handshake against an endpoint at time `now`.
///
/// `strict_mtls` controls whether client-cert-gated endpoints abort before
/// exposing their certificate (TLS 1.3 behaviour — what Amazon's MQTT
/// endpoints do in practice, per §3.3 "the TLS handshake will fail").
pub fn handshake(endpoint: &TlsEndpoint, hello: &ClientHello, now: SimTime) -> HandshakeOutcome {
    // 1. Pick the certificate according to SNI policy.
    let cert = match (&endpoint.sni, &hello.sni) {
        (SniPolicy::Ignore, _) => endpoint.certificate.clone(),
        (SniPolicy::RequireSni { fallback }, None) => fallback.clone(),
        (SniPolicy::RequireSni { fallback }, Some(name)) => {
            if endpoint.serves_name(name) {
                endpoint.certificate.clone()
            } else {
                fallback.clone()
            }
        }
        (SniPolicy::RejectWithoutSni, None) => {
            return HandshakeOutcome::Failed(HandshakeFailure::SniRequired)
        }
        (SniPolicy::RejectWithoutSni, Some(name)) => {
            if endpoint.serves_name(name) {
                endpoint.certificate.clone()
            } else {
                return HandshakeOutcome::Failed(HandshakeFailure::SniRequired);
            }
        }
    };

    // 2. Validity check.
    if !cert.valid_at(now) {
        return HandshakeOutcome::Failed(HandshakeFailure::CertificateExpired);
    }

    // 3. Client authentication. Modelled as TLS 1.3: the server certificate
    // is encrypted, so an anonymous client learns nothing.
    match endpoint.client_auth {
        ClientAuth::None => HandshakeOutcome::Complete(cert),
        ClientAuth::RequireClientCert => {
            if hello.has_client_cert {
                HandshakeOutcome::Complete(cert)
            } else {
                HandshakeOutcome::Failed(HandshakeFailure::ClientCertRequired)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::SanName;
    use iotmap_nettypes::{Date, StudyPeriod};

    fn cert(names: &[&str]) -> Certificate {
        Certificate::new(
            "test",
            names.iter().map(|n| SanName::parse(n).unwrap()).collect(),
            StudyPeriod::from_dates(Date::new(2022, 1, 1), Date::new(2023, 1, 1)),
        )
    }

    fn now() -> SimTime {
        Date::new(2022, 3, 1).midnight()
    }

    #[test]
    fn plain_endpoint_reveals_cert_to_scanners() {
        let e = TlsEndpoint::plain(cert(&["*.azure-devices.net"]));
        let out = handshake(&e, &ClientHello::anonymous(), now());
        let c = out.observed_certificate().expect("certificate observed");
        assert!(c.covers(&"hub.azure-devices.net".parse().unwrap()));
    }

    #[test]
    fn sni_gated_endpoint_hides_iot_cert_from_scanners() {
        let e = TlsEndpoint::sni_gated(cert(&["mqtt.googleapis.com"]), cert(&["*.google.com"]));
        // Scanner without SNI sees only the generic certificate.
        let out = handshake(&e, &ClientHello::anonymous(), now());
        let c = out.observed_certificate().unwrap();
        assert!(!c.covers(&"mqtt.googleapis.com".parse().unwrap()));
        // A client with correct SNI gets the IoT certificate.
        let out = handshake(
            &e,
            &ClientHello::with_sni("mqtt.googleapis.com".parse().unwrap()),
            now(),
        );
        assert!(out
            .observed_certificate()
            .unwrap()
            .covers(&"mqtt.googleapis.com".parse().unwrap()));
    }

    #[test]
    fn sni_gated_with_wrong_name_gets_fallback() {
        let e = TlsEndpoint::sni_gated(cert(&["mqtt.googleapis.com"]), cert(&["*.google.com"]));
        let out = handshake(
            &e,
            &ClientHello::with_sni("evil.example.com".parse().unwrap()),
            now(),
        );
        assert!(!out
            .observed_certificate()
            .unwrap()
            .covers(&"mqtt.googleapis.com".parse().unwrap()));
    }

    #[test]
    fn mutual_tls_fails_for_scanners_but_works_for_devices() {
        let e = TlsEndpoint::mutual_tls(cert(&["*.iot.us-east-1.amazonaws.com"]));
        let out = handshake(&e, &ClientHello::anonymous(), now());
        assert_eq!(
            out,
            HandshakeOutcome::Failed(HandshakeFailure::ClientCertRequired)
        );
        assert!(out.observed_certificate().is_none());

        let device = ClientHello {
            sni: None,
            has_client_cert: true,
        };
        assert!(handshake(&e, &device, now())
            .observed_certificate()
            .is_some());
    }

    #[test]
    fn expired_certificate_fails() {
        let mut c = cert(&["*.iot.sap"]);
        c.not_after = Date::new(2022, 2, 1).midnight();
        let e = TlsEndpoint::plain(c);
        assert_eq!(
            handshake(&e, &ClientHello::anonymous(), now()),
            HandshakeOutcome::Failed(HandshakeFailure::CertificateExpired)
        );
    }

    #[test]
    fn reject_without_sni_policy() {
        let e = TlsEndpoint {
            certificate: cert(&["gw.iot.example"]).into(),
            sni: SniPolicy::RejectWithoutSni,
            client_auth: ClientAuth::None,
        };
        assert_eq!(
            handshake(&e, &ClientHello::anonymous(), now()),
            HandshakeOutcome::Failed(HandshakeFailure::SniRequired)
        );
        let ok = handshake(
            &e,
            &ClientHello::with_sni("gw.iot.example".parse().unwrap()),
            now(),
        );
        assert!(ok.observed_certificate().is_some());
    }
}
