//! X.509-lite certificates.

use iotmap_nettypes::{DomainName, SimTime, StudyPeriod};
use std::fmt;

/// A subject-alternative-name entry: either an exact DNS name or a
/// single-label wildcard (`*.iot.us-east-1.amazonaws.com`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SanName {
    Exact(DomainName),
    /// Wildcard covering exactly one additional left-most label
    /// (RFC 6125 semantics).
    Wildcard(DomainName),
}

impl SanName {
    /// Parse from presentation form; a leading `*.` denotes a wildcard.
    pub fn parse(s: &str) -> Result<Self, iotmap_nettypes::ParseError> {
        if let Some(rest) = s.strip_prefix("*.") {
            Ok(SanName::Wildcard(rest.parse()?))
        } else {
            Ok(SanName::Exact(s.parse()?))
        }
    }

    /// Does this SAN cover `name` (RFC 6125: wildcard matches exactly one
    /// label)?
    pub fn covers(&self, name: &DomainName) -> bool {
        match self {
            SanName::Exact(e) => e == name,
            SanName::Wildcard(base) => {
                let n = name.as_str();
                let b = base.as_str();
                n.len() > b.len()
                    && n.ends_with(b)
                    && n.as_bytes()[n.len() - b.len() - 1] == b'.'
                    && !n[..n.len() - b.len() - 1].contains('.')
            }
        }
    }

    /// Presentation form (`*.example.com` for wildcards).
    pub fn presentation(&self) -> String {
        let mut buf = String::new();
        self.presentation_into(&mut buf);
        buf
    }

    /// [`SanName::presentation`] into a reusable buffer — no allocation on
    /// hot paths that render every SAN of every record (the discovery
    /// matcher's candidate verification).
    pub fn presentation_into<'b>(&self, buf: &'b mut String) -> &'b str {
        buf.clear();
        let n = match self {
            SanName::Exact(n) => n,
            SanName::Wildcard(n) => {
                buf.push_str("*.");
                n
            }
        };
        buf.push_str(n.as_str());
        buf
    }
}

impl fmt::Display for SanName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.presentation())
    }
}

/// An X.509-lite certificate: just the fields the discovery methodology
/// reads. The paper "only use\[s\] certificates that are valid during the
/// study period" (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Subject common name.
    pub subject: String,
    /// Subject alternative names.
    pub sans: Vec<SanName>,
    /// Issuer common name (e.g. a public CA, or `"self-signed"`).
    pub issuer: String,
    /// Validity window `[not_before, not_after)`.
    pub not_before: SimTime,
    pub not_after: SimTime,
}

impl Certificate {
    /// A leaf certificate valid over `validity` with the given SANs.
    pub fn new(subject: &str, sans: Vec<SanName>, validity: StudyPeriod) -> Self {
        Certificate {
            subject: subject.to_string(),
            sans,
            issuer: "SimTrust Public CA".to_string(),
            not_before: validity.start,
            not_after: validity.end,
        }
    }

    /// Is the certificate valid at `t`?
    pub fn valid_at(&self, t: SimTime) -> bool {
        t >= self.not_before && t < self.not_after
    }

    /// Is the certificate valid during the entire window?
    pub fn valid_during(&self, window: &StudyPeriod) -> bool {
        self.not_before <= window.start && self.not_after >= window.end
    }

    /// Does the certificate cover a host name (any SAN)?
    pub fn covers(&self, name: &DomainName) -> bool {
        self.sans.iter().any(|s| s.covers(name))
    }

    /// All names in presentation form (for Censys-style string searches).
    pub fn all_names(&self) -> impl Iterator<Item = String> + '_ {
        self.sans.iter().map(|s| s.presentation())
    }

    /// Visit every name in presentation form through one reusable buffer —
    /// the allocation-free counterpart of [`Certificate::all_names`].
    pub fn for_each_name(&self, buf: &mut String, mut f: impl FnMut(&str)) {
        for san in &self.sans {
            f(san.presentation_into(buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotmap_nettypes::Date;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn validity() -> StudyPeriod {
        StudyPeriod::from_dates(Date::new(2022, 1, 1), Date::new(2023, 1, 1))
    }

    #[test]
    fn exact_san_covers_only_itself() {
        let san = SanName::parse("mqtt.googleapis.com").unwrap();
        assert!(san.covers(&d("mqtt.googleapis.com")));
        assert!(!san.covers(&d("x.mqtt.googleapis.com")));
        assert!(!san.covers(&d("googleapis.com")));
    }

    #[test]
    fn wildcard_san_matches_exactly_one_label() {
        let san = SanName::parse("*.iot.us-east-1.amazonaws.com").unwrap();
        assert!(san.covers(&d("a1b2.iot.us-east-1.amazonaws.com")));
        assert!(!san.covers(&d("iot.us-east-1.amazonaws.com")));
        assert!(!san.covers(&d("x.y.iot.us-east-1.amazonaws.com")));
        assert!(!san.covers(&d("xiot.us-east-1.amazonaws.com")));
    }

    #[test]
    fn certificate_validity_windows() {
        let c = Certificate::new("gw", vec![], validity());
        assert!(c.valid_at(Date::new(2022, 3, 1).midnight()));
        assert!(!c.valid_at(Date::new(2023, 3, 1).midnight()));
        assert!(c.valid_during(&StudyPeriod::main_week()));
        let expired = Certificate {
            not_after: Date::new(2022, 3, 2).midnight(),
            ..c
        };
        assert!(!expired.valid_during(&StudyPeriod::main_week()));
    }

    #[test]
    fn certificate_covers_via_any_san() {
        let c = Certificate::new(
            "azure",
            vec![
                SanName::parse("*.azure-devices.net").unwrap(),
                SanName::parse("management.azure.com").unwrap(),
            ],
            validity(),
        );
        assert!(c.covers(&d("myhub.azure-devices.net")));
        assert!(c.covers(&d("management.azure.com")));
        assert!(!c.covers(&d("deep.sub.azure-devices.net")));
    }

    #[test]
    fn presentation_roundtrip() {
        for s in ["*.iot.sap", "mqtt.googleapis.com"] {
            assert_eq!(SanName::parse(s).unwrap().presentation(), s);
        }
    }

    #[test]
    fn presentation_into_reuses_buffer() {
        let mut buf = String::new();
        let wild = SanName::parse("*.iot.sap").unwrap();
        assert_eq!(wild.presentation_into(&mut buf), "*.iot.sap");
        let exact = SanName::parse("mqtt.googleapis.com").unwrap();
        assert_eq!(exact.presentation_into(&mut buf), "mqtt.googleapis.com");

        let c = Certificate::new("gw", vec![wild, exact], validity());
        let mut seen = Vec::new();
        c.for_each_name(&mut buf, |n| seen.push(n.to_string()));
        assert_eq!(seen, c.all_names().collect::<Vec<_>>());
    }
}
