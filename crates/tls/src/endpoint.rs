//! Server-side TLS endpoint configuration.

use crate::cert::Certificate;
use iotmap_nettypes::DomainName;
use std::sync::Arc;

/// How the endpoint reacts to the SNI extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SniPolicy {
    /// SNI ignored: the default certificate is served to everyone. This is
    /// what makes Censys-style scans productive.
    Ignore,
    /// Without SNI (or with an unknown name), a generic front-end
    /// certificate is served instead of the IoT one — Google's behaviour,
    /// which hides ~98% of its IoT IPs from certificate scans (§3.5).
    RequireSni {
        /// Certificate served when no/unknown SNI is presented.
        fallback: Arc<Certificate>,
    },
    /// Without SNI the handshake is rejected outright.
    RejectWithoutSni,
}

/// Client-authentication requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientAuth {
    None,
    /// Mutual TLS: "other IoT backend providers, such as Amazon, require
    /// the installation of a client certificate … In the absence of this
    /// certificate, the TLS handshake will fail." (§3.3)
    RequireClientCert,
}

/// A TLS endpoint: one `(ip, port)` service with certificates and policy.
///
/// Certificates are held behind [`Arc`] so one generated certificate can
/// serve every endpoint of a site: cloning an endpoint (or completing a
/// handshake) bumps a refcount instead of deep-copying the SAN list.
#[derive(Debug, Clone)]
pub struct TlsEndpoint {
    /// The default (IoT) certificate.
    pub certificate: Arc<Certificate>,
    /// SNI behaviour.
    pub sni: SniPolicy,
    /// Client-certificate requirement.
    pub client_auth: ClientAuth,
}

impl TlsEndpoint {
    /// A plain endpoint: default certificate, no SNI games, no client auth.
    pub fn plain(certificate: impl Into<Arc<Certificate>>) -> Self {
        TlsEndpoint {
            certificate: certificate.into(),
            sni: SniPolicy::Ignore,
            client_auth: ClientAuth::None,
        }
    }

    /// Google-style: the IoT certificate only with correct SNI.
    pub fn sni_gated(
        certificate: impl Into<Arc<Certificate>>,
        fallback: impl Into<Arc<Certificate>>,
    ) -> Self {
        TlsEndpoint {
            certificate: certificate.into(),
            sni: SniPolicy::RequireSni {
                fallback: fallback.into(),
            },
            client_auth: ClientAuth::None,
        }
    }

    /// Amazon-MQTT-style: handshake fails without a client certificate.
    pub fn mutual_tls(certificate: impl Into<Arc<Certificate>>) -> Self {
        TlsEndpoint {
            certificate: certificate.into(),
            sni: SniPolicy::Ignore,
            client_auth: ClientAuth::RequireClientCert,
        }
    }

    /// Does the default certificate cover the name (i.e. is `name` a
    /// correct SNI value for this endpoint)?
    pub fn serves_name(&self, name: &DomainName) -> bool {
        self.certificate.covers(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::SanName;
    use iotmap_nettypes::{Date, StudyPeriod};

    fn cert(names: &[&str]) -> Certificate {
        Certificate::new(
            "test",
            names.iter().map(|n| SanName::parse(n).unwrap()).collect(),
            StudyPeriod::from_dates(Date::new(2022, 1, 1), Date::new(2023, 1, 1)),
        )
    }

    #[test]
    fn constructors_set_policies() {
        let e = TlsEndpoint::plain(cert(&["*.iot.sap"]));
        assert_eq!(e.sni, SniPolicy::Ignore);
        assert_eq!(e.client_auth, ClientAuth::None);

        let g = TlsEndpoint::sni_gated(cert(&["mqtt.googleapis.com"]), cert(&["*.google.com"]));
        assert!(matches!(g.sni, SniPolicy::RequireSni { .. }));

        let a = TlsEndpoint::mutual_tls(cert(&["*.iot.us-east-1.amazonaws.com"]));
        assert_eq!(a.client_auth, ClientAuth::RequireClientCert);
    }

    #[test]
    fn serves_name_checks_sans() {
        let e = TlsEndpoint::plain(cert(&["*.iot.sap"]));
        assert!(e.serves_name(&"tenant.iot.sap".parse().unwrap()));
        assert!(!e.serves_name(&"iot.sap".parse().unwrap()));
    }
}
