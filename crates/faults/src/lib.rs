//! # iotmap-faults — seeded, deterministic fault-injection plans
//!
//! Real measurement campaigns never see clean data: Censys sweeps skip
//! hosts and publish truncated snapshots, ZGrab handshakes time out,
//! passive-DNS sensors go dark for days, vantage points fall over, and
//! NetFlow exporters drop or reset mid-stream (§3.3/§3.4 discuss exactly
//! these blind spots). This crate describes such imperfections as a
//! [`FaultPlan`]: a declarative, *seeded* set of per-source fault rates
//! that every instrument in the workspace consults at its injection
//! points.
//!
//! ## Determinism model
//!
//! Fault decisions are **pure hash functions**, never sequential RNG
//! draws: [`roll`] maps `(plan seed, label, stable item identity)` to a
//! uniform value in `[0, 1)`, and an item is faulted iff its roll falls
//! below the configured rate. Three properties follow directly:
//!
//! * **Schedule independence** — a decision depends only on the item,
//!   not on which worker thread or shard visits it, so faulted runs stay
//!   byte-identical at any `iotmap-par` thread count.
//! * **Monotonicity** — two plans sharing a seed make *nested* drop
//!   sets: if `heavy` rates dominate `light` rates knob-for-knob (see
//!   [`FaultPlan::dominates`]), every item dropped under `light` is also
//!   dropped under `heavy`. Discovery and traffic volume are monotone in
//!   their input record sets, so a strictly heavier plan can never
//!   *increase* coverage — the property `tests/properties.rs` pins.
//! * **Zero-cost zero plan** — an inactive plan ([`FaultPlan::none`])
//!   takes no rolls and touches no shared RNG stream, so a zero-fault
//!   run is byte-identical to a run with no fault layer at all.
//!
//! Transient faults (handshake and query timeouts) go through [`retry`],
//! which models retry-with-seeded-backoff: attempts roll independently,
//! the simulated exponential backoff cost is returned for the ethics /
//! pacing budget, and an operation is lost only when every attempt times
//! out. Persistent faults (sweep gaps, sensor outages, export drops)
//! have no retry — the consuming methodology degrades gracefully
//! instead, and reports what it lost through `iotmap-obs` counters
//! (`faults.<source>.records_{dropped,retried,recovered}`), which the
//! run report surfaces as its `degraded_sources` section.

use std::net::IpAddr;

/// Fault knobs for the Censys-like daily IPv4 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CensysFaults {
    /// Probability that one day's sweep misses a responsive host
    /// entirely (ZMap-style sweep gap; keyed on `(host, day)`).
    pub sweep_gap_rate: f64,
    /// Probability that a harvested certificate record is lost to
    /// snapshot truncation (keyed on `(host, port, day)`).
    pub truncation_rate: f64,
}

/// Fault knobs for the ZGrab2-like IPv6 banner-grab campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ZgrabFaults {
    /// Probability that one handshake attempt times out (transient;
    /// retried up to [`ZgrabFaults::max_attempts`] times).
    pub timeout_rate: f64,
    /// Handshake attempts per target, including the first (≥ 1).
    pub max_attempts: u32,
    /// Probability that a completed handshake yields a truncated,
    /// unusable banner (the certificate cannot be parsed).
    pub partial_banner_rate: f64,
}

/// Fault knobs for the passive-DNS (DNSDB-like) aggregation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PassiveDnsFaults {
    /// Probability that an aggregated rrset entry is lost outright
    /// (sensor-side record loss; keyed on `(owner, rdata)`).
    pub record_loss_rate: f64,
    /// Sensor outage windows as `(offset_days, len_days)` pairs relative
    /// to the start of the study period being queried. Observations made
    /// inside an outage window were never recorded: entries wholly
    /// contained in outage days are dropped, entries straddling one have
    /// their first/last-seen times clipped.
    pub outage_windows: Vec<(u32, u32)>,
}

/// Fault knobs for the active-DNS resolution campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveDnsFaults {
    /// Probability that a vantage point is down for a whole day (all of
    /// that vantage-day's queries are lost; keyed on `(day, vantage)`).
    pub vantage_outage_rate: f64,
    /// Probability that one resolution attempt times out (transient;
    /// retried with seeded backoff).
    pub timeout_rate: f64,
    /// Resolution attempts per query, including the first (≥ 1).
    pub max_attempts: u32,
}

/// Fault knobs for NetFlow export at the border router.
#[derive(Debug, Clone, PartialEq)]
pub struct NetflowFaults {
    /// Probability that an exported flow record is dropped on the wire
    /// (keyed on the flow identity).
    pub export_drop_rate: f64,
    /// Probability that the exporter resets during a given hour,
    /// dropping every record it would have exported in that hour
    /// (keyed on the epoch hour).
    pub reset_rate: f64,
}

/// Fault knobs for the *runtime* itself: seeded panic injection inside
/// pipeline stages and `iotmap-par` shards. Unlike every other family in
/// this crate, crash faults never change what a completed run computes —
/// they only exercise the supervision path (containment, retry,
/// checkpoint/resume). A run that survives a crash plan is byte-identical
/// to one that never crashed.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashFaults {
    /// Probability that one stage *attempt* panics at entry (keyed on
    /// `(stage, attempt)`; only the first [`CrashFaults::max_crashes`]
    /// attempts ever roll, so a supervisor with enough retries always
    /// makes progress).
    pub stage_rate: f64,
    /// Probability that one parallel shard panics at entry (keyed on
    /// `(stage, shard, attempt)`; the engine's serial quarantine retry
    /// runs with injection disarmed, so a contained shard always
    /// recovers).
    pub shard_rate: f64,
    /// Attempt budget for injection: attempts `>= max_crashes` never
    /// roll. This bounds injected failures per site, guaranteeing
    /// termination under retry.
    pub max_crashes: u32,
    /// Hard kill switch modelling power loss: abort the run immediately
    /// after the named stage completes (and its checkpoint, if any, is
    /// written). Fires on every run that reaches the stage — resume the
    /// run without this knob to get past it.
    pub kill_after_stage: Option<String>,
}

impl CrashFaults {
    /// No crash injection.
    pub const NONE: CrashFaults = CrashFaults {
        stage_rate: 0.0,
        shard_rate: 0.0,
        max_crashes: 2,
        kill_after_stage: None,
    };

    /// Does this plan inject any crashes?
    pub fn is_active(&self) -> bool {
        self.stage_rate > 0.0 || self.shard_rate > 0.0 || self.kill_after_stage.is_some()
    }
}

/// A complete fault plan: one seed plus per-source knobs.
///
/// Construct with [`FaultPlan::none`] / [`FaultPlan::light`] /
/// [`FaultPlan::heavy`], parse one from a config string with
/// [`FaultPlan::parse_config`], or build a custom plan field-by-field.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault roll. Two plans sharing a seed make nested
    /// drop decisions (see the crate docs on monotonicity).
    pub seed: u64,
    pub censys: CensysFaults,
    pub zgrab: ZgrabFaults,
    pub passive_dns: PassiveDnsFaults,
    pub active_dns: ActiveDnsFaults,
    pub netflow: NetflowFaults,
    /// Runtime crash injection (stages/shards). Not a data source: it
    /// never alters artifacts, is excluded from [`FaultPlan::dominates`]
    /// and [`FaultPlan::data_fingerprint`], and does not make
    /// [`FaultPlan::is_active`] true on its own — consult
    /// `plan.crash.is_active()` separately.
    pub crash: CrashFaults,
}

/// Default seed for the built-in presets — shared so `light` and `heavy`
/// make nested decisions out of the box.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA01_7BAD;

impl CensysFaults {
    /// No Censys faults.
    pub const NONE: CensysFaults = CensysFaults {
        sweep_gap_rate: 0.0,
        truncation_rate: 0.0,
    };

    /// Does this source take any fault rolls?
    pub fn is_active(&self) -> bool {
        self.sweep_gap_rate > 0.0 || self.truncation_rate > 0.0
    }
}

impl ZgrabFaults {
    /// No ZGrab faults.
    pub const NONE: ZgrabFaults = ZgrabFaults {
        timeout_rate: 0.0,
        max_attempts: 3,
        partial_banner_rate: 0.0,
    };

    /// Does this source take any fault rolls?
    pub fn is_active(&self) -> bool {
        self.timeout_rate > 0.0 || self.partial_banner_rate > 0.0
    }
}

impl PassiveDnsFaults {
    /// No passive-DNS faults.
    pub const NONE: PassiveDnsFaults = PassiveDnsFaults {
        record_loss_rate: 0.0,
        outage_windows: Vec::new(),
    };

    /// Does this source take any fault rolls or outage clipping?
    pub fn is_active(&self) -> bool {
        self.record_loss_rate > 0.0 || !self.outage_windows.is_empty()
    }
}

impl ActiveDnsFaults {
    /// No active-DNS faults.
    pub const NONE: ActiveDnsFaults = ActiveDnsFaults {
        vantage_outage_rate: 0.0,
        timeout_rate: 0.0,
        max_attempts: 3,
    };

    /// Does this source take any fault rolls?
    pub fn is_active(&self) -> bool {
        self.vantage_outage_rate > 0.0 || self.timeout_rate > 0.0
    }
}

impl NetflowFaults {
    /// No NetFlow faults.
    pub const NONE: NetflowFaults = NetflowFaults {
        export_drop_rate: 0.0,
        reset_rate: 0.0,
    };

    /// Does this source take any fault rolls?
    pub fn is_active(&self) -> bool {
        self.export_drop_rate > 0.0 || self.reset_rate > 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The zero plan: no rolls, no drops, byte-identical output to a run
    /// with no fault layer at all.
    pub const fn none() -> FaultPlan {
        FaultPlan {
            seed: DEFAULT_FAULT_SEED,
            censys: CensysFaults {
                sweep_gap_rate: 0.0,
                truncation_rate: 0.0,
            },
            zgrab: ZgrabFaults {
                timeout_rate: 0.0,
                max_attempts: 3,
                partial_banner_rate: 0.0,
            },
            passive_dns: PassiveDnsFaults {
                record_loss_rate: 0.0,
                outage_windows: Vec::new(),
            },
            active_dns: ActiveDnsFaults {
                vantage_outage_rate: 0.0,
                timeout_rate: 0.0,
                max_attempts: 3,
            },
            netflow: NetflowFaults {
                export_drop_rate: 0.0,
                reset_rate: 0.0,
            },
            crash: CrashFaults::NONE,
        }
    }

    /// Mild, realistic background noise: occasional sweep gaps and
    /// timeouts, no outage windows.
    pub fn light() -> FaultPlan {
        FaultPlan {
            seed: DEFAULT_FAULT_SEED,
            censys: CensysFaults {
                sweep_gap_rate: 0.02,
                truncation_rate: 0.01,
            },
            zgrab: ZgrabFaults {
                timeout_rate: 0.05,
                max_attempts: 3,
                partial_banner_rate: 0.02,
            },
            passive_dns: PassiveDnsFaults {
                record_loss_rate: 0.03,
                outage_windows: Vec::new(),
            },
            active_dns: ActiveDnsFaults {
                vantage_outage_rate: 0.02,
                timeout_rate: 0.05,
                max_attempts: 3,
            },
            netflow: NetflowFaults {
                export_drop_rate: 0.01,
                reset_rate: 0.0,
            },
            crash: CrashFaults::NONE,
        }
    }

    /// A bad measurement week: heavy packet loss, a one-day passive-DNS
    /// sensor outage, flaky vantage points, exporter resets. Every rate
    /// dominates [`FaultPlan::light`] and every `light` outage window is
    /// included, so `heavy` drops a strict superset of what `light`
    /// drops ([`FaultPlan::dominates`] holds).
    pub fn heavy() -> FaultPlan {
        FaultPlan {
            seed: DEFAULT_FAULT_SEED,
            censys: CensysFaults {
                sweep_gap_rate: 0.15,
                truncation_rate: 0.10,
            },
            zgrab: ZgrabFaults {
                timeout_rate: 0.25,
                max_attempts: 3,
                partial_banner_rate: 0.10,
            },
            passive_dns: PassiveDnsFaults {
                record_loss_rate: 0.20,
                outage_windows: vec![(2, 1)],
            },
            active_dns: ActiveDnsFaults {
                vantage_outage_rate: 0.15,
                timeout_rate: 0.20,
                max_attempts: 3,
            },
            netflow: NetflowFaults {
                export_drop_rate: 0.08,
                reset_rate: 0.02,
            },
            crash: CrashFaults::NONE,
        }
    }

    /// Does any source take fault rolls under this plan?
    pub fn is_active(&self) -> bool {
        self.censys.is_active()
            || self.zgrab.is_active()
            || self.passive_dns.is_active()
            || self.active_dns.is_active()
            || self.netflow.is_active()
    }

    /// Is `self` at least as faulty as `other` on every knob, with the
    /// same seed and retry budgets? When this holds, `self` drops a
    /// superset of the items `other` drops, so coverage under `self`
    /// can never exceed coverage under `other` — the monotonicity
    /// property the test suite relies on.
    pub fn dominates(&self, other: &FaultPlan) -> bool {
        let windows_cover = other.passive_dns.outage_windows.iter().all(|w| {
            // Every day of `other`'s window is inside one of ours.
            (w.0..w.0 + w.1).all(|d| {
                self.passive_dns
                    .outage_windows
                    .iter()
                    .any(|s| d >= s.0 && d < s.0 + s.1)
            })
        });
        self.seed == other.seed
            && self.zgrab.max_attempts == other.zgrab.max_attempts
            && self.active_dns.max_attempts == other.active_dns.max_attempts
            && self.censys.sweep_gap_rate >= other.censys.sweep_gap_rate
            && self.censys.truncation_rate >= other.censys.truncation_rate
            && self.zgrab.timeout_rate >= other.zgrab.timeout_rate
            && self.zgrab.partial_banner_rate >= other.zgrab.partial_banner_rate
            && self.passive_dns.record_loss_rate >= other.passive_dns.record_loss_rate
            && windows_cover
            && self.active_dns.vantage_outage_rate >= other.active_dns.vantage_outage_rate
            && self.active_dns.timeout_rate >= other.active_dns.timeout_rate
            && self.netflow.export_drop_rate >= other.netflow.export_drop_rate
            && self.netflow.reset_rate >= other.netflow.reset_rate
    }

    /// A canonical string over every *artifact-affecting* knob: the seed
    /// and all data-source families, excluding [`FaultPlan::crash`]
    /// (which only perturbs the execution path, never the output). Two
    /// plans with equal fingerprints produce byte-identical artifacts
    /// from the same world — this is what checkpoint headers embed, so a
    /// crashy run's checkpoints stay valid for a crash-free resume.
    pub fn data_fingerprint(&self) -> String {
        format!(
            "seed={};censys={:?};zgrab={:?};passive_dns={:?};active_dns={:?};netflow={:?}",
            self.seed, self.censys, self.zgrab, self.passive_dns, self.active_dns, self.netflow
        )
    }

    /// Resolve a `--faults` CLI spec: `none`, `light`, or `heavy`.
    /// Anything else is not a preset (the caller should treat it as a
    /// config-file path and hand the contents to
    /// [`FaultPlan::parse_config`]).
    pub fn preset(name: &str) -> Option<FaultPlan> {
        match name {
            "none" => Some(FaultPlan::none()),
            "light" => Some(FaultPlan::light()),
            "heavy" => Some(FaultPlan::heavy()),
            _ => None,
        }
    }

    /// Parse a fault plan from a `key = value` config string (the
    /// `--faults FILE` format). Unknown keys are errors; omitted keys
    /// keep their [`FaultPlan::none`] defaults. `#` starts a comment.
    ///
    /// ```text
    /// # a custom plan
    /// seed = 7
    /// censys.sweep_gap_rate = 0.05
    /// zgrab.timeout_rate = 0.1
    /// zgrab.max_attempts = 4
    /// passive_dns.outage_windows = 1+2, 5+1   # (offset_days)+(len_days)
    /// netflow.export_drop_rate = 0.02
    /// ```
    pub fn parse_config(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        let sections = iotmap_nettypes::kvconf::parse(text)?;
        for section in &sections {
            if let Some(name) = &section.name {
                return Err(format!(
                    "line {}: fault plans have no sections (found [{name}])",
                    section.line
                ));
            }
        }
        for entry in &sections[0].entries {
            let (key, value, lineno) = (entry.key.as_str(), entry.value.as_str(), entry.line);
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|e| format!("line {lineno}: bad rate {v:?}: {e}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("line {lineno}: rate {r} outside [0, 1]"));
                }
                Ok(r)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|e| format!("line {lineno}: bad seed: {e}"))?;
                }
                "censys.sweep_gap_rate" => plan.censys.sweep_gap_rate = rate(value)?,
                "censys.truncation_rate" => plan.censys.truncation_rate = rate(value)?,
                "zgrab.timeout_rate" => plan.zgrab.timeout_rate = rate(value)?,
                "zgrab.partial_banner_rate" => plan.zgrab.partial_banner_rate = rate(value)?,
                "zgrab.max_attempts" => {
                    plan.zgrab.max_attempts = parse_attempts(value, lineno)?;
                }
                "passive_dns.record_loss_rate" => plan.passive_dns.record_loss_rate = rate(value)?,
                "passive_dns.outage_windows" => {
                    plan.passive_dns.outage_windows = parse_windows(value, lineno)?;
                }
                "active_dns.vantage_outage_rate" => {
                    plan.active_dns.vantage_outage_rate = rate(value)?;
                }
                "active_dns.timeout_rate" => plan.active_dns.timeout_rate = rate(value)?,
                "active_dns.max_attempts" => {
                    plan.active_dns.max_attempts = parse_attempts(value, lineno)?;
                }
                "netflow.export_drop_rate" => plan.netflow.export_drop_rate = rate(value)?,
                "netflow.reset_rate" => plan.netflow.reset_rate = rate(value)?,
                "crash.stage_rate" => plan.crash.stage_rate = rate(value)?,
                "crash.shard_rate" => plan.crash.shard_rate = rate(value)?,
                "crash.max_crashes" => {
                    plan.crash.max_crashes = value
                        .parse()
                        .map_err(|e| format!("line {lineno}: bad crash budget: {e}"))?;
                }
                "crash.kill_after_stage" => {
                    plan.crash.kill_after_stage = Some(value.to_string());
                }
                other => return Err(format!("line {lineno}: unknown key {other:?}")),
            }
        }
        Ok(plan)
    }
}

fn parse_attempts(value: &str, lineno: usize) -> Result<u32, String> {
    let n: u32 = value
        .parse()
        .map_err(|e| format!("line {lineno}: bad attempt count: {e}"))?;
    if n == 0 {
        return Err(format!("line {lineno}: max_attempts must be >= 1"));
    }
    Ok(n)
}

fn parse_windows(value: &str, lineno: usize) -> Result<Vec<(u32, u32)>, String> {
    value
        .split(',')
        .map(|w| w.trim())
        .filter(|w| !w.is_empty())
        .map(|w| {
            let (off, len) = w
                .split_once('+')
                .ok_or_else(|| format!("line {lineno}: window {w:?} is not `offset+len`"))?;
            let off: u32 = off
                .trim()
                .parse()
                .map_err(|e| format!("line {lineno}: bad window offset: {e}"))?;
            let len: u32 = len
                .trim()
                .parse()
                .map_err(|e| format!("line {lineno}: bad window length: {e}"))?;
            if len == 0 {
                return Err(format!("line {lineno}: zero-length window"));
            }
            Ok((off, len))
        })
        .collect()
}

// ------------------------------------------------------------ pure rolls

/// SplitMix64 finalizer — the avalanche step all rolls go through.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// FNV-1a over a string — for hashing labels and stable identities.
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Combine two identity components into one roll key.
#[inline]
pub fn key2(a: u64, b: u64) -> u64 {
    mix(a.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(b))
}

/// Combine three identity components into one roll key.
#[inline]
pub fn key3(a: u64, b: u64, c: u64) -> u64 {
    key2(key2(a, b), c)
}

/// A stable 64-bit identity for an IP address.
pub fn key_ip(ip: IpAddr) -> u64 {
    match ip {
        IpAddr::V4(a) => u32::from(a) as u64,
        IpAddr::V6(a) => {
            let v = u128::from(a);
            mix((v >> 64) as u64 ^ (v as u64).rotate_left(1))
        }
    }
}

/// The fault roll: a pure, stateless map from `(seed, label, key)` to a
/// uniform value in `[0, 1)`. An item is faulted iff
/// `roll(seed, label, key) < rate` — heavier rates with the same seed
/// therefore fault strict supersets, and the decision is independent of
/// evaluation order, shard layout, and thread count.
pub fn roll(seed: u64, label: &str, key: u64) -> f64 {
    let stream = mix(seed ^ 0x5851_f42d_4c95_7f2d).wrapping_add(hash_str(label));
    let v = mix(mix(stream) ^ key);
    // Top 53 bits → [0, 1), the standard double construction.
    (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Shorthand: should this item be dropped? Takes no roll when the rate
/// is zero, so an inactive plan costs nothing and changes nothing.
#[inline]
pub fn drops(seed: u64, label: &str, key: u64, rate: f64) -> bool {
    rate > 0.0 && roll(seed, label, key) < rate
}

/// Outcome of a transient-fault retry loop for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryOutcome {
    /// Attempts taken (1 when the first try succeeded).
    pub attempts: u32,
    /// Did any attempt get through?
    pub succeeded: bool,
    /// Total simulated exponential backoff spent between attempts, in
    /// seconds (seeded jitter included) — charged to the pacing budget.
    pub backoff_secs: u64,
}

/// Retry-with-seeded-backoff for transient faults: each attempt rolls
/// independently (same seed/label, attempt index folded into the key),
/// and the operation survives iff any attempt's roll clears the rate.
/// Because the per-attempt rolls are fixed by `(seed, label, key)`, a
/// heavier rate fails a superset of operations — the retry path
/// preserves plan monotonicity.
pub fn retry(seed: u64, label: &str, key: u64, rate: f64, max_attempts: u32) -> RetryOutcome {
    let max = max_attempts.max(1);
    if rate <= 0.0 {
        return RetryOutcome {
            attempts: 1,
            succeeded: true,
            backoff_secs: 0,
        };
    }
    let mut backoff = 0u64;
    for attempt in 0..max {
        if roll(seed, label, key2(key, attempt as u64 + 1)) >= rate {
            return RetryOutcome {
                attempts: attempt + 1,
                succeeded: true,
                backoff_secs: backoff,
            };
        }
        // Exponential backoff with seeded jitter: 2^attempt seconds plus
        // up to the same again, decided by its own roll.
        let base = 1u64 << attempt.min(16);
        let jitter =
            (roll(seed, "retry.backoff", key2(key, attempt as u64 + 1)) * base as f64) as u64;
        backoff += base + jitter;
    }
    RetryOutcome {
        attempts: max,
        succeeded: false,
        backoff_secs: backoff,
    }
}

/// Seeded crash injection: the ambient context `iotmap-par` consults.
///
/// The supervisor *arms* the current thread with the plan's
/// [`CrashFaults`] around each stage attempt; stage entry and shard entry
/// then take pure-hash rolls exactly like every other fault family, and a
/// hit raises a panic with a recognisable [`crash::InjectedCrash`]
/// payload. Arming installs (once, process-wide) a panic hook that
/// silences injected-crash payloads so deliberately-noisy recovery tests
/// don't flood stderr — every other panic still reports through the
/// previously installed hook.
pub mod crash {
    use super::{key2, key3, roll, CrashFaults};
    use std::cell::RefCell;

    /// Panic payload for injected crashes, so containment layers can
    /// distinguish a drill from a genuine bug when counting.
    #[derive(Debug, Clone)]
    pub struct InjectedCrash {
        /// Where the crash fired, e.g. `stage:discovery` or
        /// `shard:discovery/3`.
        pub site: String,
    }

    /// The armed injection context for the current thread.
    #[derive(Debug, Clone)]
    pub struct CrashCtx {
        /// The plan seed (crash rolls share the plan's seed).
        pub seed: u64,
        /// The crash knobs.
        pub faults: CrashFaults,
        /// FNV hash of the armed stage's name (decorrelates sites).
        pub stage: u64,
        /// The stage name (for panic payloads).
        pub stage_name: String,
        /// The supervisor's attempt index for this stage (0-based).
        pub attempt: u32,
    }

    thread_local! {
        static ARMED: RefCell<Option<CrashCtx>> = const { RefCell::new(None) };
    }

    fn silence_injected_crash_reports() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<InjectedCrash>().is_some() {
                    return;
                }
                prev(info);
            }));
        });
    }

    /// Arm the current thread: shard entries reached from here (within
    /// the same thread, or captured by `iotmap-par` at fan-out) roll for
    /// injection. Call [`disarm`] when the attempt ends.
    pub fn arm(seed: u64, faults: &CrashFaults, stage: &str, attempt: u32) {
        if !faults.is_active() {
            return;
        }
        silence_injected_crash_reports();
        ARMED.with(|a| {
            *a.borrow_mut() = Some(CrashCtx {
                seed,
                faults: faults.clone(),
                stage: super::hash_str(stage),
                stage_name: stage.to_string(),
                attempt,
            })
        });
    }

    /// Disarm the current thread.
    pub fn disarm() {
        ARMED.with(|a| a.borrow_mut().take());
    }

    /// The context armed on this thread, if any.
    pub fn armed() -> Option<CrashCtx> {
        ARMED.with(|a| a.borrow().clone())
    }

    /// Raise an injected crash at `site`.
    pub fn trip(site: String) -> ! {
        silence_injected_crash_reports();
        std::panic::panic_any(InjectedCrash { site })
    }

    /// Stage-entry injection: panics iff the plan's `stage_rate` roll
    /// hits for `(stage, attempt)` and the attempt is within the
    /// `max_crashes` budget.
    pub fn maybe_crash_stage(seed: u64, faults: &CrashFaults, stage: &str, attempt: u32) {
        if faults.stage_rate <= 0.0 || attempt >= faults.max_crashes {
            return;
        }
        if roll(
            seed,
            "crash.stage",
            key2(super::hash_str(stage), attempt as u64),
        ) < faults.stage_rate
        {
            trip(format!("stage:{stage}"));
        }
    }

    /// Shard-entry decision for `iotmap-par` workers: should shard
    /// `shard` panic under this armed context? Pure-hash on
    /// `(stage, shard, attempt)`, so the decision is independent of
    /// worker scheduling.
    pub fn shard_should_crash(ctx: &CrashCtx, shard: usize) -> bool {
        ctx.faults.shard_rate > 0.0
            && ctx.attempt < ctx.faults.max_crashes
            && roll(
                ctx.seed,
                "crash.shard",
                key3(ctx.stage, shard as u64, ctx.attempt as u64),
            ) < ctx.faults.shard_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_uniform_ish_and_stable() {
        let r1 = roll(1, "censys.gap", 42);
        let r2 = roll(1, "censys.gap", 42);
        assert_eq!(r1, r2, "pure function");
        assert!((0.0..1.0).contains(&r1));
        // Different labels and keys decorrelate.
        assert_ne!(roll(1, "censys.gap", 42), roll(1, "zgrab.timeout", 42));
        assert_ne!(roll(1, "censys.gap", 42), roll(1, "censys.gap", 43));
        assert_ne!(roll(1, "censys.gap", 42), roll(2, "censys.gap", 42));
        // Mean over many keys is ~0.5.
        let n = 10_000;
        let sum: f64 = (0..n).map(|k| roll(7, "uniformity", k)).sum();
        let mean = sum / n as f64;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn heavier_rates_drop_supersets() {
        for key in 0..5_000u64 {
            let light = drops(9, "x", key, 0.05);
            let heavy = drops(9, "x", key, 0.30);
            if light {
                assert!(heavy, "key {key}: light dropped but heavy did not");
            }
        }
    }

    #[test]
    fn zero_rate_takes_no_roll_and_never_drops() {
        for key in 0..100 {
            assert!(!drops(1, "x", key, 0.0));
        }
        let o = retry(1, "x", 5, 0.0, 3);
        assert_eq!(o.attempts, 1);
        assert!(o.succeeded);
        assert_eq!(o.backoff_secs, 0);
    }

    #[test]
    fn retry_survival_is_monotone_in_rate() {
        let mut lost_light = 0;
        let mut lost_heavy = 0;
        for key in 0..5_000u64 {
            let light = retry(3, "t", key, 0.2, 3);
            let heavy = retry(3, "t", key, 0.6, 3);
            if !light.succeeded {
                lost_light += 1;
                assert!(!heavy.succeeded, "key {key}: lost at 0.2 but fine at 0.6");
            }
            if !heavy.succeeded {
                lost_heavy += 1;
            }
            if light.attempts > 1 && light.succeeded {
                assert!(light.backoff_secs > 0, "retries cost backoff");
            }
        }
        // Sanity on magnitudes: p^3 of each.
        assert!(lost_light < 100, "{lost_light}");
        assert!((700..1400).contains(&lost_heavy), "{lost_heavy}");
    }

    #[test]
    fn presets_are_ordered() {
        let none = FaultPlan::none();
        let light = FaultPlan::light();
        let heavy = FaultPlan::heavy();
        assert!(!none.is_active());
        assert!(light.is_active() && heavy.is_active());
        assert!(light.dominates(&none));
        assert!(heavy.dominates(&light));
        assert!(heavy.dominates(&none));
        assert!(!light.dominates(&heavy));
        assert_eq!(FaultPlan::preset("heavy"), Some(heavy));
        assert_eq!(FaultPlan::preset("bogus"), None);
    }

    #[test]
    fn config_round_trip() {
        let text = "
            # custom plan
            seed = 7
            censys.sweep_gap_rate = 0.05   # gaps
            zgrab.timeout_rate = 0.1
            zgrab.max_attempts = 4
            passive_dns.outage_windows = 1+2, 5+1
            netflow.export_drop_rate = 0.02
        ";
        let plan = FaultPlan::parse_config(text).expect("parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.censys.sweep_gap_rate, 0.05);
        assert_eq!(plan.zgrab.timeout_rate, 0.1);
        assert_eq!(plan.zgrab.max_attempts, 4);
        assert_eq!(plan.passive_dns.outage_windows, vec![(1, 2), (5, 1)]);
        assert_eq!(plan.netflow.export_drop_rate, 0.02);
        // Untouched knobs keep zero defaults.
        assert_eq!(plan.active_dns.timeout_rate, 0.0);
    }

    #[test]
    fn config_rejects_bad_input() {
        assert!(FaultPlan::parse_config("censys.sweep_gap_rate = 1.5").is_err());
        assert!(FaultPlan::parse_config("bogus.key = 0.1").is_err());
        assert!(FaultPlan::parse_config("zgrab.max_attempts = 0").is_err());
        assert!(FaultPlan::parse_config("passive_dns.outage_windows = nope").is_err());
        assert!(FaultPlan::parse_config("just words").is_err());
    }

    #[test]
    fn crash_family_parses_and_stays_out_of_fingerprint() {
        let plan = FaultPlan::parse_config(
            "crash.stage_rate = 0.5\n\
             crash.shard_rate = 0.25\n\
             crash.max_crashes = 3\n\
             crash.kill_after_stage = discovery",
        )
        .expect("parses");
        assert_eq!(plan.crash.stage_rate, 0.5);
        assert_eq!(plan.crash.shard_rate, 0.25);
        assert_eq!(plan.crash.max_crashes, 3);
        assert_eq!(plan.crash.kill_after_stage.as_deref(), Some("discovery"));
        assert!(plan.crash.is_active());
        assert!(!plan.is_active(), "crash faults are not a data source");
        // Crash knobs never reach the checkpoint fingerprint.
        assert_eq!(
            plan.data_fingerprint(),
            FaultPlan::none().data_fingerprint()
        );
        assert_ne!(
            plan.data_fingerprint(),
            FaultPlan::heavy().data_fingerprint()
        );
        assert!(FaultPlan::parse_config("crash.stage_rate = 2.0").is_err());
    }

    #[test]
    fn stage_crashes_respect_the_attempt_budget() {
        let faults = CrashFaults {
            stage_rate: 1.0,
            max_crashes: 2,
            ..CrashFaults::NONE
        };
        for attempt in 0..2 {
            let hit = std::panic::catch_unwind(|| {
                crash::maybe_crash_stage(7, &faults, "discovery", attempt)
            });
            let payload = hit.expect_err("attempts within budget crash");
            let injected = payload
                .downcast_ref::<crash::InjectedCrash>()
                .expect("recognisable payload");
            assert_eq!(injected.site, "stage:discovery");
        }
        // The attempt after the budget always gets through.
        crash::maybe_crash_stage(7, &faults, "discovery", 2);
    }

    #[test]
    fn shard_crash_decisions_are_pure_and_budgeted() {
        crash::arm(
            9,
            &CrashFaults {
                shard_rate: 0.5,
                max_crashes: 1,
                ..CrashFaults::NONE
            },
            "scans",
            0,
        );
        let ctx = crash::armed().expect("armed");
        crash::disarm();
        assert!(crash::armed().is_none());
        let first: Vec<bool> = (0..64)
            .map(|s| crash::shard_should_crash(&ctx, s))
            .collect();
        let second: Vec<bool> = (0..64)
            .map(|s| crash::shard_should_crash(&ctx, s))
            .collect();
        assert_eq!(first, second, "pure decision");
        assert!(first.iter().any(|&c| c), "rate 0.5 hits some shard");
        assert!(!first.iter().all(|&c| c), "rate 0.5 spares some shard");
        let exhausted = crash::CrashCtx { attempt: 1, ..ctx };
        assert!((0..64).all(|s| !crash::shard_should_crash(&exhausted, s)));
    }

    #[test]
    fn ip_keys_are_stable_and_distinct() {
        let a = key_ip("192.0.2.1".parse().unwrap());
        let b = key_ip("192.0.2.2".parse().unwrap());
        let c = key_ip("2001:db8::1".parse().unwrap());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, key_ip("192.0.2.1".parse().unwrap()));
    }
}
