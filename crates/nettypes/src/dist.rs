//! Probability distributions over [`SimRng`].
//!
//! The synthetic workload models need heavy-tailed and diurnal shapes:
//! per-device daily volume is log-normal (the >99% < 10 MB/day finding of
//! Fig. 12a emerges from the log-normal body with a thin heavy tail), device
//! counts per subscriber line are zipf-ish, and flow inter-arrivals are
//! exponential/Poisson.

use crate::rng::SimRng;

/// Standard-normal sample (Box–Muller, taking one of the pair).
pub fn normal(rng: &mut SimRng) -> f64 {
    // Avoid ln(0).
    let u1 = loop {
        let u = rng.f64();
        if u > 0.0 {
            break u;
        }
    };
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal with mean and standard deviation.
pub fn normal_with(rng: &mut SimRng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * normal(rng)
}

/// Log-normal sample with parameters of the underlying normal
/// (`mu`, `sigma` in log space).
pub fn log_normal(rng: &mut SimRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

/// Log-normal parameterized by its *median* (`exp(mu)`), which is more
/// intuitive for traffic models: half the samples are below the median.
pub fn log_normal_median(rng: &mut SimRng, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0);
    log_normal(rng, median.ln(), sigma)
}

/// Exponential sample with the given rate (`1/mean`).
pub fn exponential(rng: &mut SimRng, rate: f64) -> f64 {
    assert!(rate > 0.0);
    let u = loop {
        let u = rng.f64();
        if u > 0.0 {
            break u;
        }
    };
    -u.ln() / rate
}

/// Poisson sample. Uses Knuth's method for small means and a rounded
/// normal approximation for large means.
pub fn poisson(rng: &mut SimRng, mean: f64) -> u64 {
    assert!(mean >= 0.0);
    if mean == 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal_with(rng, mean, mean.sqrt());
        if x < 0.0 {
            0
        } else {
            x.round() as u64
        }
    }
}

/// Pareto (type I) sample with scale `x_min` and shape `alpha`.
pub fn pareto(rng: &mut SimRng, x_min: f64, alpha: f64) -> f64 {
    assert!(x_min > 0.0 && alpha > 0.0);
    let u = loop {
        let u = rng.f64();
        if u > 0.0 {
            break u;
        }
    };
    x_min / u.powf(1.0 / alpha)
}

/// A precomputed Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Sampling is by inverse CDF over the cumulative weights (O(log n)).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf over `n` ranks with exponent `s` (s=1 is classic Zipf).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Sample a rank in `0..n` (0 is the most popular).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.f64() * total;
        self.cumulative
            .partition_point(|&c| c < x)
            .min(self.cumulative.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        (self.cumulative[k] - prev) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xD15EA5E)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = normal(&mut r);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_median_matches() {
        let mut r = rng();
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n)
            .map(|_| log_normal_median(&mut r, 5.0, 1.2))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[n / 2];
        assert!((med - 5.0).abs() < 0.3, "median {med}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut r, 3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut r, 200.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 200.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn pareto_min_respected() {
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(pareto(&mut r, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn zipf_rank_ordering() {
        let z = Zipf::new(10, 1.0);
        let mut r = rng();
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        // Rank 0 strictly most popular; monotone-ish decay.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[4]);
        assert!(counts[4] > counts[9]);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(25, 0.8);
        let total: f64 = (0..25).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }
}

#[cfg(all(test, feature = "heavy-tests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Samplers stay within their mathematical supports for arbitrary
        /// seeds and parameters.
        #[test]
        fn supports_hold(seed: u64, median in 1.0f64..1e9, sigma in 0.01f64..3.0, alpha in 0.2f64..5.0) {
            let mut rng = SimRng::new(seed);
            for _ in 0..64 {
                prop_assert!(log_normal_median(&mut rng, median, sigma) > 0.0);
                prop_assert!(exponential(&mut rng, 1.0 / median) >= 0.0);
                prop_assert!(pareto(&mut rng, median, alpha) >= median);
            }
        }

        /// Zipf samples are valid ranks and rank-0 dominates for s >= 1.
        #[test]
        fn zipf_valid(seed: u64, n in 2usize..64) {
            let z = Zipf::new(n, 1.2);
            let mut rng = SimRng::new(seed);
            let mut counts = vec![0u32; n];
            for _ in 0..512 {
                let k = z.sample(&mut rng);
                prop_assert!(k < n);
                counts[k] += 1;
            }
            prop_assert!(counts[0] >= counts[n - 1]);
        }
    }
}
