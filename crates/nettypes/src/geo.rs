//! Geographic model: continents, countries, and server locations.
//!
//! The paper's footprint analysis (§4.2) locates every backend server at
//! city granularity and aggregates to countries and continents; the traffic
//! analysis (§5.7) buckets traffic into Europe / US / Asia / Other. We keep
//! the same three levels.

use crate::error::ParseError;
use std::fmt;
use std::str::FromStr;

/// Continent, at the granularity used by the paper's region-crossing
/// analysis. The paper reports Europe, the US (we use North America), Asia,
/// and "other".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Continent {
    Europe,
    NorthAmerica,
    SouthAmerica,
    Asia,
    Africa,
    Oceania,
}

impl Continent {
    /// All continents, in a fixed order.
    pub const ALL: [Continent; 6] = [
        Continent::Europe,
        Continent::NorthAmerica,
        Continent::SouthAmerica,
        Continent::Asia,
        Continent::Africa,
        Continent::Oceania,
    ];

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Continent::Europe => "EU",
            Continent::NorthAmerica => "US",
            Continent::SouthAmerica => "SA",
            Continent::Asia => "AS",
            Continent::Africa => "AF",
            Continent::Oceania => "OC",
        }
    }

    /// The paper's four-way bucket: EU / US / Asia / Other.
    pub fn paper_bucket(&self) -> &'static str {
        match self {
            Continent::Europe => "EU",
            Continent::NorthAmerica => "US",
            Continent::Asia => "Asia",
            _ => "Other",
        }
    }
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// ISO-3166-alpha-2-style country code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Build from a two-letter code; normalized to upper case.
    pub fn new(code: &str) -> Result<Self, ParseError> {
        let bytes = code.as_bytes();
        if bytes.len() != 2 || !bytes.iter().all(|b| b.is_ascii_alphabetic()) {
            return Err(ParseError::new("country", code, "expected two letters"));
        }
        Ok(CountryCode([
            bytes[0].to_ascii_uppercase(),
            bytes[1].to_ascii_uppercase(),
        ]))
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        // Invariant: constructed from ASCII letters only.
        std::str::from_utf8(&self.0).expect("country codes are ASCII")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CountryCode {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CountryCode::new(s)
    }
}

/// A physical location: city, country, continent, and coordinates.
///
/// Coordinates feed the haversine distance used by anycast catchment
/// selection and the looking-glass latency heuristics of §4.2.
#[derive(Debug, Clone, PartialEq)]
pub struct Location {
    /// City name (or datacenter metro), e.g. `"Frankfurt"`.
    pub city: String,
    /// Country the city is in.
    pub country: CountryCode,
    /// Continent the country is on.
    pub continent: Continent,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

impl Location {
    /// Construct a location. `country` must be a two-letter code.
    pub fn new(city: &str, country: &str, continent: Continent, lat: f64, lon: f64) -> Self {
        Location {
            city: city.to_string(),
            country: CountryCode::new(country).expect("valid country code"),
            continent,
            lat,
            lon,
        }
    }

    /// Great-circle distance to another location, in kilometres.
    pub fn distance_km(&self, other: &Location) -> f64 {
        haversine_km(self.lat, self.lon, other.lat, other.lon)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, {} ({})", self.city, self.country, self.continent)
    }
}

/// Great-circle distance between two coordinates, in kilometres.
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    const EARTH_RADIUS_KM: f64 = 6371.0;
    let (la1, lo1, la2, lo2) = (
        lat1.to_radians(),
        lon1.to_radians(),
        lat2.to_radians(),
        lon2.to_radians(),
    );
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
}

/// Rough RTT (in ms) for a one-way great-circle distance: speed of light in
/// fibre plus a fixed processing overhead. Used by the looking-glass model.
pub fn rtt_ms_for_distance(km: f64) -> f64 {
    // ~200,000 km/s in fibre, round trip, plus 2 ms overhead; real paths
    // are not great circles, so inflate by a path-stretch factor of 1.4.
    2.0 + 2.0 * km * 1.4 / 200_000.0 * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn berlin() -> Location {
        Location::new("Berlin", "DE", Continent::Europe, 52.52, 13.405)
    }

    fn nyc() -> Location {
        Location::new("New York", "US", Continent::NorthAmerica, 40.7128, -74.006)
    }

    #[test]
    fn country_code_normalizes_case() {
        assert_eq!(CountryCode::new("de").unwrap().as_str(), "DE");
        assert!(CountryCode::new("DEU").is_err());
        assert!(CountryCode::new("d1").is_err());
    }

    #[test]
    fn haversine_known_distance() {
        // Berlin to New York is roughly 6,385 km.
        let d = berlin().distance_km(&nyc());
        assert!((6200.0..6600.0).contains(&d), "got {d}");
    }

    #[test]
    fn haversine_zero_distance() {
        let b = berlin();
        assert!(b.distance_km(&b) < 1e-9);
    }

    #[test]
    fn rtt_increases_with_distance() {
        assert!(rtt_ms_for_distance(6000.0) > rtt_ms_for_distance(500.0));
        // Transatlantic should be tens of milliseconds.
        let rtt = rtt_ms_for_distance(6385.0);
        assert!((60.0..120.0).contains(&rtt), "got {rtt}");
    }

    #[test]
    fn paper_buckets() {
        assert_eq!(Continent::Europe.paper_bucket(), "EU");
        assert_eq!(Continent::NorthAmerica.paper_bucket(), "US");
        assert_eq!(Continent::Asia.paper_bucket(), "Asia");
        assert_eq!(Continent::Africa.paper_bucket(), "Other");
        assert_eq!(Continent::Oceania.paper_bucket(), "Other");
    }

    #[test]
    fn display_formats() {
        assert_eq!(berlin().to_string(), "Berlin, DE (EU)");
        assert_eq!(Continent::Asia.to_string(), "AS");
    }
}
