//! Minimal `key = value` config format with optional `[section]` headers.
//!
//! This is the shared syntax layer behind the `--faults FILE` plan format
//! and the scenario-file format: `#` starts a comment, blank lines are
//! skipped, a line is either a `[section]` header or a `key = value`
//! entry. Semantic validation (known keys, value ranges) stays with the
//! caller; this module only tokenizes and carries 1-based line numbers so
//! callers can report errors against the source file.
//!
//! ```text
//! # root entries come before any section header
//! seed = 7
//!
//! [outage]
//! cloud = aws
//! region = us-east-1
//! ```

/// One `key = value` line, with its 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub key: String,
    pub value: String,
    /// 1-based line number in the source text.
    pub line: usize,
}

/// A run of entries under one `[name]` header (or the implicit root
/// section before the first header, whose `name` is `None`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// `None` for the implicit root section, `Some(name)` for `[name]`.
    pub name: Option<String>,
    /// 1-based line number of the `[name]` header (0 for the root).
    pub line: usize,
    pub entries: Vec<Entry>,
}

impl Section {
    /// Look up the last entry with the given key, if any.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().rev().find(|e| e.key == key)
    }
}

/// Parse a config text into sections. The first element is always the
/// implicit root section (possibly with no entries); named sections
/// follow in source order and may repeat.
pub fn parse(text: &str) -> Result<Vec<Section>, String> {
    let mut sections = vec![Section {
        name: None,
        line: 0,
        entries: Vec::new(),
    }];
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unclosed section header {line:?}"))?
                .trim();
            if name.is_empty() {
                return Err(format!("line {lineno}: empty section name"));
            }
            sections.push(Section {
                name: Some(name.to_string()),
                line: lineno,
                entries: Vec::new(),
            });
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty() {
            return Err(format!("line {lineno}: expected `key = value`"));
        }
        sections.last_mut().unwrap().entries.push(Entry {
            key: key.to_string(),
            value: value.trim().to_string(),
            line: lineno,
        });
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_root_and_sections() {
        let text = "\
# header comment
seed = 7

[outage]
cloud = aws   # inline comment
region = us-east-1

[outage]
cloud = azure
";
        let sections = parse(text).unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].name, None);
        assert_eq!(sections[0].entries.len(), 1);
        assert_eq!(sections[0].entries[0].key, "seed");
        assert_eq!(sections[0].entries[0].value, "7");
        assert_eq!(sections[0].entries[0].line, 2);
        assert_eq!(sections[1].name.as_deref(), Some("outage"));
        assert_eq!(sections[1].line, 4);
        assert_eq!(sections[1].get("cloud").unwrap().value, "aws");
        assert_eq!(sections[1].get("region").unwrap().value, "us-east-1");
        assert_eq!(sections[2].get("cloud").unwrap().value, "azure");
    }

    #[test]
    fn empty_text_yields_bare_root() {
        let sections = parse("").unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].name, None);
        assert!(sections[0].entries.is_empty());
    }

    #[test]
    fn line_numbers_are_one_based() {
        let sections = parse("a = 1\nb = 2").unwrap();
        assert_eq!(sections[0].entries[0].line, 1);
        assert_eq!(sections[0].entries[1].line, 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(
            parse("not an entry").unwrap_err(),
            "line 1: expected `key = value`"
        );
        assert_eq!(
            parse("= value").unwrap_err(),
            "line 1: expected `key = value`"
        );
        assert_eq!(
            parse("seed = 1\n[open\n").unwrap_err(),
            "line 2: unclosed section header \"[open\""
        );
        assert_eq!(parse("[ ]").unwrap_err(), "line 1: empty section name");
    }

    #[test]
    fn get_returns_last_duplicate() {
        let sections = parse("k = first\nk = second").unwrap();
        assert_eq!(sections[0].get("k").unwrap().value, "second");
        assert!(sections[0].get("missing").is_none());
    }
}
