//! DNS domain names.
//!
//! §3.2 of the paper is built around the structure
//! `<subdomain>.<region>.<second-level-domain>`; the discovery pipeline
//! matches regular expressions against fully-qualified names. We store names
//! lowercased and without the trailing root dot, and compare
//! case-insensitively (DNS is case-insensitive by RFC 1035).

use crate::error::ParseError;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A normalized DNS domain name (lowercase, no trailing dot).
///
/// The text is reference-counted (`Arc<str>`), so cloning a name — which
/// the discovery pipeline does for every evidence-map key and passive-DNS
/// index entry — is a refcount bump, not a heap copy. Equality, ordering,
/// and hashing all delegate to the text, so interning is invisible to
/// callers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainName {
    name: Arc<str>,
}

impl DomainName {
    /// Parse and normalize a domain name.
    ///
    /// Accepts an optional trailing dot; labels must be 1–63 characters of
    /// ASCII letters, digits, `-` or `_` (underscores occur in service
    /// labels such as `_mqtt._tcp`), must not start or end with `-`, and the
    /// whole name must be at most 253 characters.
    pub fn parse(input: &str) -> Result<Self, ParseError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() {
            return Err(ParseError::new("domain", input, "empty name"));
        }
        if trimmed.len() > 253 {
            return Err(ParseError::new("domain", input, "name too long"));
        }
        for label in trimmed.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(ParseError::new("domain", input, "bad label length"));
            }
            if !label
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
            {
                return Err(ParseError::new("domain", input, "bad label character"));
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(ParseError::new(
                    "domain",
                    input,
                    "label starts/ends with '-'",
                ));
            }
        }
        Ok(DomainName {
            name: trimmed.to_ascii_lowercase().into(),
        })
    }

    /// The normalized name.
    pub fn as_str(&self) -> &str {
        &self.name
    }

    /// The name in DNSDB presentation form, with a trailing root dot.
    pub fn fqdn(&self) -> String {
        format!("{}.", self.name)
    }

    /// [`DomainName::fqdn`] into a reusable buffer — no allocation on hot
    /// paths that render many names (the discovery matcher's per-candidate
    /// verification).
    pub fn fqdn_into<'b>(&self, buf: &'b mut String) -> &'b str {
        buf.clear();
        buf.push_str(&self.name);
        buf.push('.');
        buf
    }

    /// Labels, left to right.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.name.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// Is this name equal to, or a subdomain of, `suffix`?
    pub fn is_subdomain_of(&self, suffix: &DomainName) -> bool {
        if self.name == suffix.name {
            return true;
        }
        self.name.len() > suffix.name.len()
            && self.name.ends_with(&*suffix.name)
            && self.name.as_bytes()[self.name.len() - suffix.name.len() - 1] == b'.'
    }

    /// The parent domain (one label stripped), if any.
    pub fn parent(&self) -> Option<DomainName> {
        self.name
            .split_once('.')
            .map(|(_, rest)| DomainName { name: rest.into() })
    }

    /// The registrable-ish second-level domain: the last two labels. (A real
    /// implementation would consult the public-suffix list; two labels is
    /// sufficient for the synthetic namespace.)
    pub fn second_level(&self) -> DomainName {
        let labels: Vec<&str> = self.name.split('.').collect();
        let n = labels.len();
        let start = n.saturating_sub(2);
        if start == 0 {
            return self.clone();
        }
        DomainName {
            name: labels[start..].join(".").into(),
        }
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl FromStr for DomainName {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn parse_normalizes_case_and_trailing_dot() {
        assert_eq!(d("MQTT.GoogleApis.COM.").as_str(), "mqtt.googleapis.com");
        assert_eq!(d("example.com").fqdn(), "example.com.");
    }

    #[test]
    fn parse_rejects_bad_names() {
        assert!(DomainName::parse("").is_err());
        assert!(DomainName::parse(".").is_err());
        assert!(DomainName::parse("a..b").is_err());
        assert!(DomainName::parse("-foo.com").is_err());
        assert!(DomainName::parse("foo-.com").is_err());
        assert!(DomainName::parse("exa mple.com").is_err());
        assert!(DomainName::parse(&"a".repeat(64)).is_err());
        assert!(DomainName::parse(&format!("{}.com", "a.".repeat(127))).is_err());
    }

    #[test]
    fn fqdn_into_reuses_buffer() {
        let mut buf = String::new();
        assert_eq!(d("a.example.com").fqdn_into(&mut buf), "a.example.com.");
        assert_eq!(d("b.io").fqdn_into(&mut buf), "b.io.");
        assert_eq!(d("b.io").fqdn(), buf);
    }

    #[test]
    fn clones_share_storage() {
        let a = d("shared.example.com");
        let b = a.clone();
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_eq!(a, b);
    }

    #[test]
    fn underscores_allowed_in_service_labels() {
        assert_eq!(d("_mqtt._tcp.example.com").label_count(), 4);
    }

    #[test]
    fn subdomain_relation() {
        let base = d("iot.us-east-1.amazonaws.com");
        assert!(d("abc123.iot.us-east-1.amazonaws.com").is_subdomain_of(&base));
        assert!(base.is_subdomain_of(&base));
        assert!(!d("xiot.us-east-1.amazonaws.com").is_subdomain_of(&base));
        assert!(!d("amazonaws.com").is_subdomain_of(&base));
    }

    #[test]
    fn parent_and_second_level() {
        let n = d("a.b.example.com");
        assert_eq!(n.parent().unwrap().as_str(), "b.example.com");
        assert_eq!(n.second_level().as_str(), "example.com");
        assert_eq!(d("com").parent(), None);
        assert_eq!(d("com").second_level().as_str(), "com");
    }

    #[test]
    fn labels_iteration() {
        let n = d("device42.iot.eu-west-1.amazonaws.com");
        let labels: Vec<_> = n.labels().collect();
        assert_eq!(
            labels,
            vec!["device42", "iot", "eu-west-1", "amazonaws", "com"]
        );
    }
}
