//! Interval sets over the IPv4 number line.
//!
//! §6.2 of the paper intersects the discovered backend addresses with the
//! FireHOL aggregate blocklist — more than 610 **million** IPv4 addresses
//! drawn from 67 source lists. A set that size cannot be enumerated; it must
//! be represented as merged address ranges, which is what [`IntervalSet`]
//! provides (half-open `[start, end)` ranges over `u64` so the full IPv4
//! space `[0, 2^32)` is representable).

use crate::prefix::Ipv4Prefix;
use std::net::Ipv4Addr;

/// A set of `u64` values stored as sorted, disjoint, half-open ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    /// Sorted, non-overlapping, non-adjacent `[start, end)` ranges.
    ranges: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// Empty set.
    pub fn new() -> Self {
        IntervalSet { ranges: Vec::new() }
    }

    /// Number of stored (merged) ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Total number of contained values.
    pub fn len(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// True if the set contains no values.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Insert the half-open range `[start, end)`, merging as needed.
    pub fn insert_range(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Find the insertion window: all ranges overlapping or adjacent to
        // [start, end) get merged into one.
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let hi = self.ranges.partition_point(|&(s, _)| s <= end);
        let mut new_start = start;
        let mut new_end = end;
        if lo < hi {
            new_start = new_start.min(self.ranges[lo].0);
            new_end = new_end.max(self.ranges[hi - 1].1);
        }
        self.ranges
            .splice(lo..hi, std::iter::once((new_start, new_end)));
    }

    /// Insert a single value.
    pub fn insert(&mut self, value: u64) {
        self.insert_range(value, value + 1);
    }

    /// Insert every address of an IPv4 prefix.
    pub fn insert_prefix(&mut self, prefix: Ipv4Prefix) {
        let start = prefix.network_u32() as u64;
        self.insert_range(start, start + prefix.size());
    }

    /// Membership test.
    pub fn contains(&self, value: u64) -> bool {
        let idx = self.ranges.partition_point(|&(_, e)| e <= value);
        self.ranges.get(idx).is_some_and(|&(s, _)| s <= value)
    }

    /// Membership test for an IPv4 address.
    pub fn contains_v4(&self, addr: Ipv4Addr) -> bool {
        self.contains(u32::from(addr) as u64)
    }

    /// Does any value of `[start, end)` belong to the set?
    pub fn overlaps_range(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        let idx = self.ranges.partition_point(|&(_, e)| e <= start);
        self.ranges.get(idx).is_some_and(|&(s, _)| s < end)
    }

    /// Does the set intersect an IPv4 prefix?
    pub fn overlaps_prefix(&self, prefix: &Ipv4Prefix) -> bool {
        let start = prefix.network_u32() as u64;
        self.overlaps_range(start, start + prefix.size())
    }

    /// Iterate over the merged ranges.
    pub fn ranges(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().copied()
    }

    /// Union with another set.
    pub fn union_with(&mut self, other: &IntervalSet) {
        for &(s, e) in &other.ranges {
            self.insert_range(s, e);
        }
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        for w in self.ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "ranges must be disjoint and non-adjacent");
        }
        for &(s, e) in &self.ranges {
            assert!(s < e, "ranges must be non-empty");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = IntervalSet::new();
        s.insert_range(10, 20);
        s.check_invariants();
        assert!(s.contains(10));
        assert!(s.contains(19));
        assert!(!s.contains(20));
        assert!(!s.contains(9));
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn merging_overlapping_ranges() {
        let mut s = IntervalSet::new();
        s.insert_range(10, 20);
        s.insert_range(15, 30);
        s.check_invariants();
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn merging_adjacent_ranges() {
        let mut s = IntervalSet::new();
        s.insert_range(10, 20);
        s.insert_range(20, 25);
        s.check_invariants();
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.len(), 15);
    }

    #[test]
    fn disjoint_ranges_stay_separate() {
        let mut s = IntervalSet::new();
        s.insert_range(10, 20);
        s.insert_range(30, 40);
        s.check_invariants();
        assert_eq!(s.range_count(), 2);
        assert!(!s.contains(25));
    }

    #[test]
    fn bridge_merges_three_ranges() {
        let mut s = IntervalSet::new();
        s.insert_range(10, 20);
        s.insert_range(30, 40);
        s.insert_range(15, 35);
        s.check_invariants();
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.len(), 30);
    }

    #[test]
    fn empty_range_is_noop() {
        let mut s = IntervalSet::new();
        s.insert_range(5, 5);
        assert!(s.is_empty());
    }

    #[test]
    fn single_value_insert() {
        let mut s = IntervalSet::new();
        s.insert(42);
        s.insert(43);
        s.check_invariants();
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn prefix_insert_and_overlap() {
        let mut s = IntervalSet::new();
        s.insert_prefix("192.0.2.0/24".parse().unwrap());
        assert!(s.contains_v4("192.0.2.200".parse().unwrap()));
        assert!(!s.contains_v4("192.0.3.0".parse().unwrap()));
        assert!(s.overlaps_prefix(&"192.0.0.0/16".parse().unwrap()));
        assert!(!s.overlaps_prefix(&"10.0.0.0/8".parse().unwrap()));
        assert_eq!(s.len(), 256);
    }

    #[test]
    fn whole_ipv4_space_fits() {
        let mut s = IntervalSet::new();
        s.insert_prefix("0.0.0.0/0".parse().unwrap());
        assert_eq!(s.len(), 1 << 32);
        assert!(s.contains_v4("255.255.255.255".parse().unwrap()));
    }

    #[test]
    fn union() {
        let mut a = IntervalSet::new();
        a.insert_range(0, 10);
        let mut b = IntervalSet::new();
        b.insert_range(5, 15);
        b.insert_range(100, 110);
        a.union_with(&b);
        a.check_invariants();
        assert_eq!(a.len(), 25);
        assert_eq!(a.range_count(), 2);
    }

    #[test]
    fn overlaps_range_edges() {
        let mut s = IntervalSet::new();
        s.insert_range(10, 20);
        assert!(s.overlaps_range(19, 25));
        assert!(!s.overlaps_range(20, 25));
        assert!(s.overlaps_range(0, 11));
        assert!(!s.overlaps_range(0, 10));
        assert!(!s.overlaps_range(15, 15));
    }
}
