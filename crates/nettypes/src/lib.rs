//! Foundation types shared by every crate in the `iotmap` workspace.
//!
//! This crate deliberately has **no dependencies**: everything here —
//! addressing, prefix tries, interval sets, the geographic model, simulated
//! time, and the deterministic random-number machinery — is implemented on
//! top of `std` so that the whole reproduction is bit-for-bit reproducible
//! from a `(seed, scale)` pair.
//!
//! The types mirror the vocabulary of the paper:
//!
//! * [`prefix::Ipv4Prefix`] / [`prefix::Ipv6Prefix`] — announcement and
//!   aggregation units (Table 1 counts backends in /24s and /56s).
//! * [`trie::PrefixMap`] — longest-prefix matching, used for the
//!   RouteViews-style IP→AS mapping of §4.3.
//! * [`trie::SuffixIndex`] — reversed-label suffix lookups over domain
//!   names, the prefilter behind §3.2's single-pass pattern matching.
//! * [`geo`] — continent/country/city model used for footprints (§4.2) and
//!   region-crossing analyses (§5.7).
//! * [`time`] — civil-date simulated time; study periods of §3.1.
//! * [`rng`] / [`dist`] — seeded PRNG and the distributions that drive the
//!   synthetic workload models.

pub mod asn;
pub mod bgp;
pub mod dist;
pub mod error;
pub mod geo;
pub mod intern;
pub mod interval;
pub mod kvconf;
pub mod name;
pub mod ports;
pub mod prefix;
pub mod rng;
pub mod time;
pub mod trie;

pub use asn::Asn;
pub use bgp::{BgpOrigin, BgpTable};
pub use error::{Error, ParseError};
pub use geo::{Continent, CountryCode, Location};
pub use intern::{Interner, Sym};
pub use name::DomainName;
pub use ports::{AppProtocol, PortProto, Transport};
pub use prefix::{Ipv4Prefix, Ipv6Prefix, Prefix};
pub use rng::SimRng;
pub use time::{Date, SimDuration, SimTime, StudyPeriod};
pub use trie::{PrefixMap, SuffixIndex, SuffixQuery};

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Address family of an IP address or prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpFamily {
    V4,
    V6,
}

impl IpFamily {
    /// Family of a concrete address.
    pub fn of(addr: IpAddr) -> Self {
        match addr {
            IpAddr::V4(_) => IpFamily::V4,
            IpAddr::V6(_) => IpFamily::V6,
        }
    }
}

/// Convert an IPv4 address to its numeric form.
pub fn v4_to_u32(addr: Ipv4Addr) -> u32 {
    u32::from(addr)
}

/// Convert a numeric IPv4 address back to `Ipv4Addr`.
pub fn u32_to_v4(value: u32) -> Ipv4Addr {
    Ipv4Addr::from(value)
}

/// Convert an IPv6 address to its numeric form.
pub fn v6_to_u128(addr: Ipv6Addr) -> u128 {
    u128::from(addr)
}

/// Convert a numeric IPv6 address back to `Ipv6Addr`.
pub fn u128_to_v6(value: u128) -> Ipv6Addr {
    Ipv6Addr::from(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_of_addresses() {
        assert_eq!(IpFamily::of(IpAddr::V4(Ipv4Addr::LOCALHOST)), IpFamily::V4);
        assert_eq!(IpFamily::of(IpAddr::V6(Ipv6Addr::LOCALHOST)), IpFamily::V6);
    }

    #[test]
    fn v4_roundtrip() {
        let a = Ipv4Addr::new(192, 0, 2, 17);
        assert_eq!(u32_to_v4(v4_to_u32(a)), a);
    }

    #[test]
    fn v6_roundtrip() {
        let a: Ipv6Addr = "2001:db8::42".parse().unwrap();
        assert_eq!(u128_to_v6(v6_to_u128(a)), a);
    }
}
