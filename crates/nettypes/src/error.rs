//! Error types shared across the workspace: [`ParseError`] for the
//! textual forms, and the top-level [`Error`] enum that pipeline stages
//! return instead of panicking.

use std::fmt;

/// Workspace-level error: everything `Pipeline::run()` and the stage
/// APIs can fail with. Wraps [`ParseError`] (via `From`) alongside the
/// non-parse failure modes of the pipeline stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A textual form failed to parse.
    Parse(ParseError),
    /// A provider's detection pattern failed to compile.
    Pattern {
        /// Provider whose pattern is broken.
        provider: String,
        /// Compiler diagnostic.
        detail: String,
    },
    /// A provider name was looked up but is not in the discovery result.
    MissingProvider(String),
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// A pipeline stage failed.
    Stage {
        /// Stage name, e.g. `"discovery"`.
        stage: String,
        /// What went wrong.
        detail: String,
    },
}

impl Error {
    /// A pattern-compilation error for `provider`.
    pub fn pattern(provider: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Pattern {
            provider: provider.into(),
            detail: detail.into(),
        }
    }

    /// A stage failure for `stage`.
    pub fn stage(stage: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Stage {
            stage: stage.into(),
            detail: detail.into(),
        }
    }

    /// A configuration error.
    pub fn invalid_config(detail: impl Into<String>) -> Self {
        Error::InvalidConfig(detail.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Pattern { provider, detail } => {
                write!(f, "provider {provider:?}: pattern error: {detail}")
            }
            Error::MissingProvider(name) => {
                write!(f, "provider {name:?} not present in discovery result")
            }
            Error::InvalidConfig(detail) => write!(f, "invalid configuration: {detail}"),
            Error::Stage { stage, detail } => write!(f, "stage {stage} failed: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

/// Error produced when parsing prefixes, domain names, dates, or other
/// textual representations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    kind: &'static str,
    input: String,
    detail: String,
}

impl ParseError {
    /// Build a parse error for `kind` (e.g. `"prefix"`) over `input`.
    pub fn new(kind: &'static str, input: impl Into<String>, detail: impl Into<String>) -> Self {
        ParseError {
            kind,
            input: input.into(),
            detail: detail.into(),
        }
    }

    /// What category of value failed to parse.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The offending input.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// Human-readable description of the failure.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} {:?}: {}", self.kind, self.input, self.detail)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_kind_and_input() {
        let e = ParseError::new("prefix", "10.0.0.0/99", "length out of range");
        let s = e.to_string();
        assert!(s.contains("prefix"));
        assert!(s.contains("10.0.0.0/99"));
        assert!(s.contains("length out of range"));
    }

    #[test]
    fn accessors() {
        let e = ParseError::new("date", "2022-13-01", "month");
        assert_eq!(e.kind(), "date");
        assert_eq!(e.input(), "2022-13-01");
        assert_eq!(e.detail(), "month");
    }

    #[test]
    fn workspace_error_wraps_parse_error() {
        let parse = ParseError::new("prefix", "x/99", "length");
        let err: Error = parse.clone().into();
        assert_eq!(err, Error::Parse(parse));
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("x/99"));
    }

    #[test]
    fn workspace_error_variants_display() {
        assert!(Error::pattern("acme", "unbalanced (")
            .to_string()
            .contains("acme"));
        assert!(Error::MissingProvider("bosch".into())
            .to_string()
            .contains("bosch"));
        assert!(Error::invalid_config("threads = 0")
            .to_string()
            .contains("threads"));
        assert!(Error::stage("discovery", "empty source set")
            .to_string()
            .contains("discovery"));
    }
}
