//! Error types for parsing the textual forms used throughout the workspace.

use std::fmt;

/// Error produced when parsing prefixes, domain names, dates, or other
/// textual representations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    kind: &'static str,
    input: String,
    detail: String,
}

impl ParseError {
    /// Build a parse error for `kind` (e.g. `"prefix"`) over `input`.
    pub fn new(kind: &'static str, input: impl Into<String>, detail: impl Into<String>) -> Self {
        ParseError {
            kind,
            input: input.into(),
            detail: detail.into(),
        }
    }

    /// What category of value failed to parse.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The offending input.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// Human-readable description of the failure.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} {:?}: {}", self.kind, self.input, self.detail)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_kind_and_input() {
        let e = ParseError::new("prefix", "10.0.0.0/99", "length out of range");
        let s = e.to_string();
        assert!(s.contains("prefix"));
        assert!(s.contains("10.0.0.0/99"));
        assert!(s.contains("length out of range"));
    }

    #[test]
    fn accessors() {
        let e = ParseError::new("date", "2022-13-01", "month");
        assert_eq!(e.kind(), "date");
        assert_eq!(e.input(), "2022-13-01");
        assert_eq!(e.detail(), "month");
    }
}
