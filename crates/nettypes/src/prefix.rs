//! IP prefixes (CIDR blocks) for both address families.
//!
//! Prefixes are the unit the paper counts backends in: Table 1 reports the
//! number of distinct IPv4 /24s and IPv6 /56s covered by each provider's
//! discovered gateway addresses, and §4.3 maps addresses to their covering
//! BGP announcements.

use crate::error::ParseError;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// An IPv4 CIDR prefix, stored in canonical (masked) form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

#[allow(clippy::len_without_is_empty)] // `len` is the prefix length in bits
impl Ipv4Prefix {
    /// Create a prefix; host bits of `addr` are zeroed. Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "IPv4 prefix length must be <= 32");
        let raw = u32::from(addr);
        Ipv4Prefix {
            addr: raw & Self::mask(len),
            len,
        }
    }

    /// Netmask for a given prefix length.
    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The (masked) network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Numeric network address.
    pub fn network_u32(&self) -> u32 {
        self.addr
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Number of addresses covered by this prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// First address of the prefix.
    pub fn first(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Last address of the prefix.
    pub fn last(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr | !Self::mask(self.len))
    }

    /// Does this prefix contain the address?
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & Self::mask(self.len)) == self.addr
    }

    /// Does this prefix fully contain another prefix?
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// The /24 block containing an address — the aggregation unit of Table 1.
    pub fn slash24_of(addr: Ipv4Addr) -> Ipv4Prefix {
        Ipv4Prefix::new(addr, 24)
    }

    /// The `index`-th address inside the prefix. Panics if out of range.
    pub fn nth(&self, index: u64) -> Ipv4Addr {
        assert!(index < self.size(), "address index out of prefix range");
        Ipv4Addr::from(self.addr + index as u32)
    }

    /// Iterate over the addresses of the prefix (use only on small prefixes).
    pub fn addresses(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        (0..self.size()).map(move |i| self.nth(i))
    }

    /// Split into sub-prefixes of `sublen` bits. Panics if `sublen < len`.
    pub fn subnets(&self, sublen: u8) -> impl Iterator<Item = Ipv4Prefix> + '_ {
        assert!(sublen >= self.len && sublen <= 32);
        let count = 1u64 << (sublen - self.len);
        let step = 1u64 << (32 - sublen);
        let base = self.addr;
        (0..count).map(move |i| Ipv4Prefix {
            addr: base + (i * step) as u32,
            len: sublen,
        })
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| ParseError::new("prefix", s, "missing '/'"))?;
        let addr: Ipv4Addr = addr_s
            .parse()
            .map_err(|_| ParseError::new("prefix", s, "bad IPv4 address"))?;
        let len: u8 = len_s
            .parse()
            .map_err(|_| ParseError::new("prefix", s, "bad length"))?;
        if len > 32 {
            return Err(ParseError::new("prefix", s, "length out of range"));
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

/// An IPv6 CIDR prefix, stored in canonical (masked) form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv6Prefix {
    addr: u128,
    len: u8,
}

#[allow(clippy::len_without_is_empty)] // `len` is the prefix length in bits
impl Ipv6Prefix {
    /// Create a prefix; host bits of `addr` are zeroed. Panics if `len > 128`.
    pub fn new(addr: Ipv6Addr, len: u8) -> Self {
        assert!(len <= 128, "IPv6 prefix length must be <= 128");
        let raw = u128::from(addr);
        Ipv6Prefix {
            addr: raw & Self::mask(len),
            len,
        }
    }

    fn mask(len: u8) -> u128 {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len)
        }
    }

    /// The (masked) network address.
    pub fn network(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.addr)
    }

    /// Numeric network address.
    pub fn network_u128(&self) -> u128 {
        self.addr
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Does this prefix contain the address?
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        (u128::from(addr) & Self::mask(self.len)) == self.addr
    }

    /// Does this prefix fully contain another prefix?
    pub fn covers(&self, other: &Ipv6Prefix) -> bool {
        other.len >= self.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// The /56 block containing an address — the aggregation unit of Table 1.
    pub fn slash56_of(addr: Ipv6Addr) -> Ipv6Prefix {
        Ipv6Prefix::new(addr, 56)
    }

    /// The `index`-th address inside the prefix (low 64 bits only).
    pub fn nth(&self, index: u64) -> Ipv6Addr {
        Ipv6Addr::from(self.addr + index as u128)
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Ipv6Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| ParseError::new("prefix", s, "missing '/'"))?;
        let addr: Ipv6Addr = addr_s
            .parse()
            .map_err(|_| ParseError::new("prefix", s, "bad IPv6 address"))?;
        let len: u8 = len_s
            .parse()
            .map_err(|_| ParseError::new("prefix", s, "bad length"))?;
        if len > 128 {
            return Err(ParseError::new("prefix", s, "length out of range"));
        }
        Ok(Ipv6Prefix::new(addr, len))
    }
}

/// A prefix of either family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Prefix {
    V4(Ipv4Prefix),
    V6(Ipv6Prefix),
}

#[allow(clippy::len_without_is_empty)] // `len` is the prefix length in bits
impl Prefix {
    /// Does this prefix contain the address (families must match)?
    pub fn contains(&self, addr: IpAddr) -> bool {
        match (self, addr) {
            (Prefix::V4(p), IpAddr::V4(a)) => p.contains(a),
            (Prefix::V6(p), IpAddr::V6(a)) => p.contains(a),
            _ => false,
        }
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        match self {
            Prefix::V4(p) => p.len(),
            Prefix::V6(p) => p.len(),
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prefix::V4(p) => p.fmt(f),
            Prefix::V6(p) => p.fmt(f),
        }
    }
}

impl From<Ipv4Prefix> for Prefix {
    fn from(p: Ipv4Prefix) -> Self {
        Prefix::V4(p)
    }
}

impl From<Ipv6Prefix> for Prefix {
    fn from(p: Ipv6Prefix) -> Self {
        Prefix::V6(p)
    }
}

impl FromStr for Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.contains(':') {
            s.parse::<Ipv6Prefix>().map(Prefix::V6)
        } else {
            s.parse::<Ipv4Prefix>().map(Prefix::V4)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_canonicalizes_host_bits() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(p.network(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn v4_contains() {
        let p: Ipv4Prefix = "192.0.2.0/24".parse().unwrap();
        assert!(p.contains(Ipv4Addr::new(192, 0, 2, 255)));
        assert!(!p.contains(Ipv4Addr::new(192, 0, 3, 0)));
    }

    #[test]
    fn v4_zero_length_contains_everything() {
        let p: Ipv4Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(p.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(p.size(), 1 << 32);
    }

    #[test]
    fn v4_covers() {
        let big: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let small: Ipv4Prefix = "10.3.0.0/16".parse().unwrap();
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.covers(&big));
    }

    #[test]
    fn v4_first_last() {
        let p: Ipv4Prefix = "198.51.100.0/25".parse().unwrap();
        assert_eq!(p.first(), Ipv4Addr::new(198, 51, 100, 0));
        assert_eq!(p.last(), Ipv4Addr::new(198, 51, 100, 127));
    }

    #[test]
    fn v4_subnets() {
        let p: Ipv4Prefix = "10.0.0.0/22".parse().unwrap();
        let subs: Vec<_> = p.subnets(24).collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].to_string(), "10.0.0.0/24");
        assert_eq!(subs[3].to_string(), "10.0.3.0/24");
    }

    #[test]
    fn v4_slash24_of() {
        let b = Ipv4Prefix::slash24_of(Ipv4Addr::new(203, 0, 113, 200));
        assert_eq!(b.to_string(), "203.0.113.0/24");
    }

    #[test]
    fn v4_nth_and_addresses() {
        let p: Ipv4Prefix = "192.0.2.0/30".parse().unwrap();
        let all: Vec<_> = p.addresses().collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3], Ipv4Addr::new(192, 0, 2, 3));
        assert_eq!(p.nth(1), Ipv4Addr::new(192, 0, 2, 1));
    }

    #[test]
    fn v4_parse_rejects_bad_inputs() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn v6_basic() {
        let p: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        assert!(p.contains("2001:db8:ffff::1".parse().unwrap()));
        assert!(!p.contains("2001:db9::1".parse().unwrap()));
        assert_eq!(p.len(), 32);
    }

    #[test]
    fn v6_slash56() {
        let a: Ipv6Addr = "2001:db8:0:1234:5678::1".parse().unwrap();
        let b = Ipv6Prefix::slash56_of(a);
        assert_eq!(b.to_string(), "2001:db8:0:1200::/56");
    }

    #[test]
    fn v6_covers() {
        let big: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        let small: Ipv6Prefix = "2001:db8:1::/48".parse().unwrap();
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
    }

    #[test]
    fn mixed_prefix_contains_requires_matching_family() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(p.contains("10.1.1.1".parse().unwrap()));
        assert!(!p.contains("2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn prefix_parse_dispatches_on_family() {
        assert!(matches!(
            "10.0.0.0/8".parse::<Prefix>().unwrap(),
            Prefix::V4(_)
        ));
        assert!(matches!(
            "2001:db8::/32".parse::<Prefix>().unwrap(),
            Prefix::V6(_)
        ));
    }
}
