//! Simulated time: Unix-epoch seconds plus civil-date conversions.
//!
//! The study runs over two fixed windows (§3.1): the main week
//! **2022-02-28 .. 2022-03-07** and the preliminary/outage week
//! **2021-12-03 .. 2021-12-10** containing the AWS us-east-1 outage of
//! December 7, 2021. All conversions use proleptic-Gregorian civil-date
//! arithmetic (Howard Hinnant's algorithm) so the simulation never consults
//! the wall clock.

use crate::error::ParseError;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::str::FromStr;

/// Seconds, as a duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    pub const fn seconds(s: u64) -> Self {
        SimDuration(s)
    }
    pub const fn minutes(m: u64) -> Self {
        SimDuration(m * 60)
    }
    pub const fn hours(h: u64) -> Self {
        SimDuration(h * 3600)
    }
    pub const fn days(d: u64) -> Self {
        SimDuration(d * 86_400)
    }
    pub fn as_secs(&self) -> u64 {
        self.0
    }
    pub fn as_hours_f64(&self) -> f64 {
        self.0 as f64 / 3600.0
    }
}

/// An instant, in seconds since the Unix epoch (UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Construct from epoch seconds.
    pub const fn from_unix(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Epoch seconds.
    pub fn unix(&self) -> u64 {
        self.0
    }

    /// The civil date of this instant (UTC).
    pub fn date(&self) -> Date {
        Date::from_epoch_days((self.0 / 86_400) as i64)
    }

    /// Hour of day, 0..24 (UTC).
    pub fn hour_of_day(&self) -> u32 {
        ((self.0 % 86_400) / 3600) as u32
    }

    /// Seconds since local midnight (UTC).
    pub fn seconds_of_day(&self) -> u64 {
        self.0 % 86_400
    }

    /// Whole days since the Unix epoch.
    pub fn epoch_days(&self) -> i64 {
        (self.0 / 86_400) as i64
    }

    /// Midnight of this instant's day.
    pub fn midnight(&self) -> SimTime {
        SimTime(self.0 - self.0 % 86_400)
    }

    /// Whole hours since the Unix epoch — the bucketing unit of Figures 8/9.
    pub fn epoch_hours(&self) -> u64 {
        self.0 / 3600
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.date();
        let rem = self.0 % 86_400;
        write!(
            f,
            "{}T{:02}:{:02}:{:02}Z",
            d,
            rem / 3600,
            (rem % 3600) / 60,
            rem % 60
        )
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

/// A civil (calendar) date in the proleptic Gregorian calendar, UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Date {
    pub year: i32,
    pub month: u32,
    pub day: u32,
}

impl Date {
    /// Construct, panicking on out-of-range components.
    pub fn new(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month out of range");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day out of range"
        );
        Date { year, month, day }
    }

    /// Days since 1970-01-01 (Howard Hinnant's `days_from_civil`).
    pub fn epoch_days(&self) -> i64 {
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let mp = (self.month as i64 + 9) % 12; // [0, 11], Mar=0
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`Date::epoch_days`] (`civil_from_days`).
    pub fn from_epoch_days(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
        Date {
            year: (if m <= 2 { y + 1 } else { y }) as i32,
            month: m,
            day: d,
        }
    }

    /// Midnight (UTC) of this date. Panics for dates before 1970.
    pub fn midnight(&self) -> SimTime {
        let days = self.epoch_days();
        assert!(days >= 0, "SimTime cannot represent pre-epoch dates");
        SimTime(days as u64 * 86_400)
    }

    /// Day of week; 0 = Monday .. 6 = Sunday.
    pub fn weekday(&self) -> u32 {
        // 1970-01-01 was a Thursday (index 3).
        (self.epoch_days().rem_euclid(7) as u32 + 3) % 7
    }

    /// The next calendar day.
    pub fn succ(&self) -> Date {
        Date::from_epoch_days(self.epoch_days() + 1)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl FromStr for Date {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split('-');
        let (y, m, d) = match (it.next(), it.next(), it.next(), it.next()) {
            (Some(y), Some(m), Some(d), None) => (y, m, d),
            _ => return Err(ParseError::new("date", s, "expected YYYY-MM-DD")),
        };
        let year: i32 = y
            .parse()
            .map_err(|_| ParseError::new("date", s, "bad year"))?;
        let month: u32 = m
            .parse()
            .map_err(|_| ParseError::new("date", s, "bad month"))?;
        let day: u32 = d
            .parse()
            .map_err(|_| ParseError::new("date", s, "bad day"))?;
        if !(1..=12).contains(&month) {
            return Err(ParseError::new("date", s, "month out of range"));
        }
        if day < 1 || day > days_in_month(year, month) {
            return Err(ParseError::new("date", s, "day out of range"));
        }
        Ok(Date { year, month, day })
    }
}

/// Is `year` a leap year (proleptic Gregorian)?
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in a month.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month"),
    }
}

/// A half-open time window `[start, end)` — a study period (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyPeriod {
    pub start: SimTime,
    pub end: SimTime,
}

impl StudyPeriod {
    /// Construct; panics if `end <= start`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(end > start, "study period must be non-empty");
        StudyPeriod { start, end }
    }

    /// From two dates: `[start 00:00, end 00:00)`.
    pub fn from_dates(start: Date, end: Date) -> Self {
        Self::new(start.midnight(), end.midnight())
    }

    /// The paper's main study week: Feb 28 – Mar 7, 2022 (§3.1).
    pub fn main_week() -> Self {
        Self::from_dates(Date::new(2022, 2, 28), Date::new(2022, 3, 7))
    }

    /// The preliminary / AWS-outage week: Dec 3 – Dec 10, 2021 (§6.1).
    pub fn outage_week() -> Self {
        Self::from_dates(Date::new(2021, 12, 3), Date::new(2021, 12, 10))
    }

    /// The AWS us-east-1 outage window on Dec 7, 2021 (~15:30–22:30 UTC).
    pub fn aws_outage_window() -> Self {
        let day = Date::new(2021, 12, 7).midnight();
        Self::new(
            day + SimDuration::minutes(15 * 60 + 30),
            day + SimDuration::minutes(22 * 60 + 30),
        )
    }

    /// Does the window contain the instant?
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Do two windows overlap?
    pub fn overlaps(&self, other: &StudyPeriod) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Duration of the window.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Number of whole days in the window (rounded up).
    pub fn num_days(&self) -> u64 {
        self.duration().as_secs().div_ceil(86_400)
    }

    /// Iterate over the civil dates whose midnights fall in the window.
    pub fn days(&self) -> impl Iterator<Item = Date> + '_ {
        let first = self.start.epoch_days();
        let last = self.end.unix().div_ceil(86_400); // exclusive
        (first..last as i64).map(Date::from_epoch_days)
    }

    /// Iterate over hour buckets `[t, t+1h)` covering the window.
    pub fn hours(&self) -> impl Iterator<Item = SimTime> + '_ {
        let first = self.start.unix() / 3600;
        let last = self.end.unix().div_ceil(3600);
        (first..last).map(|h| SimTime(h * 3600))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_days_known_values() {
        assert_eq!(Date::new(1970, 1, 1).epoch_days(), 0);
        assert_eq!(Date::new(1970, 1, 2).epoch_days(), 1);
        assert_eq!(Date::new(2000, 3, 1).epoch_days(), 11017);
        assert_eq!(Date::new(2022, 2, 28).epoch_days(), 19051);
    }

    #[test]
    fn civil_roundtrip_over_leap_years() {
        for days in (-800_000..800_000).step_by(97) {
            let d = Date::from_epoch_days(days);
            assert_eq!(d.epoch_days(), days, "roundtrip failed at {d}");
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2022));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2022, 2), 28);
    }

    #[test]
    fn weekday_known_values() {
        // 2022-02-28 was a Monday.
        assert_eq!(Date::new(2022, 2, 28).weekday(), 0);
        // 2021-12-07 was a Tuesday.
        assert_eq!(Date::new(2021, 12, 7).weekday(), 1);
        // 1970-01-01 was a Thursday.
        assert_eq!(Date::new(1970, 1, 1).weekday(), 3);
    }

    #[test]
    fn date_parse_and_display() {
        let d: Date = "2022-02-28".parse().unwrap();
        assert_eq!(d, Date::new(2022, 2, 28));
        assert_eq!(d.to_string(), "2022-02-28");
        assert!("2022-13-01".parse::<Date>().is_err());
        assert!("2022-02-29".parse::<Date>().is_err());
        assert!("2022/02/28".parse::<Date>().is_err());
    }

    #[test]
    fn simtime_components() {
        let t = Date::new(2022, 3, 1).midnight() + SimDuration::hours(13) + SimDuration::minutes(5);
        assert_eq!(t.hour_of_day(), 13);
        assert_eq!(t.date(), Date::new(2022, 3, 1));
        assert_eq!(t.to_string(), "2022-03-01T13:05:00Z");
        assert_eq!(t.midnight().hour_of_day(), 0);
    }

    #[test]
    fn main_week_has_seven_days_crossing_month_boundary() {
        let w = StudyPeriod::main_week();
        let days: Vec<_> = w.days().collect();
        assert_eq!(days.len(), 7);
        assert_eq!(days[0], Date::new(2022, 2, 28));
        assert_eq!(days[1], Date::new(2022, 3, 1));
        assert_eq!(days[6], Date::new(2022, 3, 6));
        assert_eq!(w.num_days(), 7);
    }

    #[test]
    fn hours_iterator_counts() {
        let w = StudyPeriod::main_week();
        assert_eq!(w.hours().count(), 7 * 24);
    }

    #[test]
    fn outage_window_inside_outage_week() {
        let week = StudyPeriod::outage_week();
        let win = StudyPeriod::aws_outage_window();
        assert!(week.contains(win.start));
        assert!(week.contains(win.end));
        assert!(week.overlaps(&win));
        assert_eq!(win.duration(), SimDuration::hours(7));
    }

    #[test]
    fn contains_is_half_open() {
        let w = StudyPeriod::main_week();
        assert!(w.contains(w.start));
        assert!(!w.contains(w.end));
    }

    #[test]
    fn date_succ_rolls_over_months() {
        assert_eq!(Date::new(2022, 2, 28).succ(), Date::new(2022, 3, 1));
        assert_eq!(Date::new(2021, 12, 31).succ(), Date::new(2022, 1, 1));
    }
}
