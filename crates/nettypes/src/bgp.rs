//! BGP routing-table data — the RouteViews / Hurricane Electric stand-in.
//!
//! §4.3 of the paper: "We use the RouteViews Prefix to AS mapping dataset
//! from CAIDA to map IP addresses to prefixes and AS numbers", and §4.2
//! uses "the location of prefix announcements from Hurricane Electric" as
//! one of the location sources. One table serves both: each announcement
//! carries its origin AS, the announcing organization, and an optional
//! location (label + geography).

use crate::asn::Asn;
use crate::geo::Location;
use crate::prefix::{Ipv4Prefix, Ipv6Prefix};
use crate::trie::PrefixMap;
use std::net::IpAddr;

/// Metadata of one announcement.
#[derive(Debug, Clone, PartialEq)]
pub struct BgpOrigin {
    pub asn: Asn,
    /// Organization name (WHOIS-style).
    pub org: String,
    /// Site/location label of the announcement (Hurricane-Electric-style
    /// geofeed), e.g. `"us-east-1"` or a metro name. Empty when unknown.
    pub location_label: String,
    /// Geography of the announcement, when the geofeed provides one.
    pub location: Option<Location>,
}

/// The global routing table.
#[derive(Debug, Clone, Default)]
pub struct BgpTable {
    map: PrefixMap<BgpOrigin>,
    count: usize,
}

impl BgpTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announce an IPv4 prefix.
    pub fn announce_v4(&mut self, prefix: Ipv4Prefix, origin: BgpOrigin) {
        if self.map.insert_v4(prefix, origin).is_none() {
            self.count += 1;
        }
    }

    /// Announce an IPv6 prefix.
    pub fn announce_v6(&mut self, prefix: Ipv6Prefix, origin: BgpOrigin) {
        if self.map.insert_v6(prefix, origin).is_none() {
            self.count += 1;
        }
    }

    /// Longest-prefix match: the announcement covering an address.
    pub fn origin(&self, addr: IpAddr) -> Option<&BgpOrigin> {
        self.map.lookup(addr)
    }

    /// The covering prefix and origin for an IPv4 address.
    pub fn lookup_v4(&self, addr: std::net::Ipv4Addr) -> Option<(Ipv4Prefix, &BgpOrigin)> {
        self.map.lookup_v4(addr)
    }

    /// The covering prefix and origin for an IPv6 address.
    pub fn lookup_v6(&self, addr: std::net::Ipv6Addr) -> Option<(Ipv6Prefix, &BgpOrigin)> {
        self.map.lookup_v6(addr)
    }

    /// Number of announcements.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin(asn: u32, label: &str) -> BgpOrigin {
        BgpOrigin {
            asn: Asn(asn),
            org: format!("org-{asn}"),
            location_label: label.to_string(),
            location: None,
        }
    }

    #[test]
    fn longest_match_wins() {
        let mut t = BgpTable::new();
        t.announce_v4("52.0.0.0/13".parse().unwrap(), origin(14618, "us-east-1"));
        t.announce_v4(
            "52.0.16.0/20".parse().unwrap(),
            origin(14618, "us-east-1-zoneB"),
        );
        let o = t.origin("52.0.17.1".parse().unwrap()).unwrap();
        assert_eq!(o.location_label, "us-east-1-zoneB");
        let o = t.origin("52.1.0.1".parse().unwrap()).unwrap();
        assert_eq!(o.location_label, "us-east-1");
        assert!(t.origin("53.0.0.1".parse().unwrap()).is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn v6_announcements() {
        let mut t = BgpTable::new();
        t.announce_v6("2a05::/32".parse().unwrap(), origin(16509, "aws-v6"));
        assert!(t.origin("2a05::1".parse().unwrap()).is_some());
        assert!(t.origin("2a06::1".parse().unwrap()).is_none());
    }
}
