//! Autonomous System numbers.

use crate::error::ParseError;
use std::fmt;
use std::str::FromStr;

/// A BGP Autonomous System number.
///
/// The paper classifies a backend as *Dedicated Infrastructure* when all its
/// addresses are announced by ASes managed by the backend operator, and as
/// *Public Cloud Resources* when they are announced by cloud/CDN ASes (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl Asn {
    /// Numeric value.
    pub fn value(&self) -> u32 {
        self.0
    }

    /// Is this a private-use ASN (RFC 6996)?
    pub fn is_private(&self) -> bool {
        (64512..=65534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl FromStr for Asn {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| ParseError::new("asn", s, "expected AS<number>"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let a = Asn(15169);
        assert_eq!(a.to_string(), "AS15169");
        assert_eq!("AS15169".parse::<Asn>().unwrap(), a);
        assert_eq!("15169".parse::<Asn>().unwrap(), a);
        assert_eq!("as15169".parse::<Asn>().unwrap(), a);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("ASfoo".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
    }

    #[test]
    fn private_ranges() {
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(64511).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(!Asn(16509).is_private());
    }
}
