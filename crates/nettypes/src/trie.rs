//! Longest-prefix-match tries — and their DNS mirror image, a
//! reversed-label suffix index.
//!
//! §4.3 of the paper maps every discovered backend address to its covering
//! BGP announcement ("We use the RouteViews Prefix to AS mapping dataset from
//! CAIDA to map IP addresses to prefixes and AS numbers"). A binary trie
//! keyed on prefix bits gives the longest-prefix match in `O(len)` and is the
//! canonical data structure for this job.
//!
//! [`SuffixIndex`] applies the same idea to domain names: names are keyed by
//! their labels *in reverse* (`com → amazonaws → iot → …`), so "every name
//! under `.amazonaws.com`" is one trie walk instead of a scan — the lookup
//! shape §3.2's literal-suffixed provider patterns need.

use crate::prefix::{Ipv4Prefix, Ipv6Prefix};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// A node of the binary trie. Children are indexed by the next bit.
#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// A binary trie over bit strings of up to 128 bits.
///
/// Keys are `(bits, len)` where `bits` is left-aligned in a `u128` (bit 127
/// is the first bit of the prefix). Values at shorter prefixes are shadowed
/// by more-specific entries during longest-prefix lookups, exactly like a
/// routing table.
#[derive(Debug, Clone)]
pub struct BitTrie<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for BitTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> BitTrie<V> {
    /// Empty trie.
    pub fn new() -> Self {
        BitTrie {
            root: Node::default(),
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bit(bits: u128, i: u8) -> usize {
        ((bits >> (127 - i)) & 1) as usize
    }

    /// Insert a value at `(bits, plen)`, returning the previous value if any.
    pub fn insert(&mut self, bits: u128, plen: u8, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..plen {
            let b = Self::bit(bits, i);
            node = node.children[b].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup at `(bits, plen)`.
    pub fn get(&self, bits: u128, plen: u8) -> Option<&V> {
        let mut node = &self.root;
        for i in 0..plen {
            let b = Self::bit(bits, i);
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Longest-prefix match for a full-length key, returning the matched
    /// prefix length and value.
    pub fn longest_match(&self, bits: u128, key_len: u8) -> Option<(u8, &V)> {
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = None;
        if let Some(v) = node.value.as_ref() {
            best = Some((0, v));
        }
        for i in 0..key_len {
            let b = Self::bit(bits, i);
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Visit all `(bits, plen, value)` entries in lexicographic bit order.
    pub fn for_each<F: FnMut(u128, u8, &V)>(&self, mut f: F) {
        fn walk<V, F: FnMut(u128, u8, &V)>(node: &Node<V>, bits: u128, depth: u8, f: &mut F) {
            if let Some(v) = node.value.as_ref() {
                f(bits, depth, v);
            }
            for (b, child) in node.children.iter().enumerate() {
                if let Some(child) = child {
                    let next = bits | ((b as u128) << (127 - depth));
                    walk(child, next, depth + 1, f);
                }
            }
        }
        walk(&self.root, 0, 0, &mut f);
    }
}

/// A map from IP prefixes (both families) to values, with longest-prefix
/// matching — the shape of a RouteViews-derived routing table.
#[derive(Debug, Clone)]
pub struct PrefixMap<V> {
    v4: BitTrie<V>,
    v6: BitTrie<V>,
}

impl<V> Default for PrefixMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixMap<V> {
    /// Empty map.
    pub fn new() -> Self {
        PrefixMap {
            v4: BitTrie::new(),
            v6: BitTrie::new(),
        }
    }

    /// Total number of stored prefixes across both families.
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn v4_bits(p: &Ipv4Prefix) -> u128 {
        (p.network_u32() as u128) << 96
    }

    /// Insert an IPv4 prefix.
    pub fn insert_v4(&mut self, prefix: Ipv4Prefix, value: V) -> Option<V> {
        self.v4.insert(Self::v4_bits(&prefix), prefix.len(), value)
    }

    /// Insert an IPv6 prefix.
    pub fn insert_v6(&mut self, prefix: Ipv6Prefix, value: V) -> Option<V> {
        self.v6.insert(prefix.network_u128(), prefix.len(), value)
    }

    /// Longest-prefix match for an IPv4 address.
    pub fn lookup_v4(&self, addr: Ipv4Addr) -> Option<(Ipv4Prefix, &V)> {
        iotmap_obs::count!("nettypes.trie.lookups");
        let bits = (u32::from(addr) as u128) << 96;
        self.v4
            .longest_match(bits, 32)
            .map(|(plen, v)| (Ipv4Prefix::new(addr, plen), v))
    }

    /// Longest-prefix match for an IPv6 address.
    pub fn lookup_v6(&self, addr: Ipv6Addr) -> Option<(Ipv6Prefix, &V)> {
        iotmap_obs::count!("nettypes.trie.lookups");
        self.v6
            .longest_match(u128::from(addr), 128)
            .map(|(plen, v)| (Ipv6Prefix::new(addr, plen), v))
    }

    /// Longest-prefix match for an address of either family.
    pub fn lookup(&self, addr: IpAddr) -> Option<&V> {
        match addr {
            IpAddr::V4(a) => self.lookup_v4(a).map(|(_, v)| v),
            IpAddr::V6(a) => self.lookup_v6(a).map(|(_, v)| v),
        }
    }

    /// Exact lookup of a stored IPv4 prefix.
    pub fn get_v4(&self, prefix: &Ipv4Prefix) -> Option<&V> {
        self.v4.get(Self::v4_bits(prefix), prefix.len())
    }

    /// Exact lookup of a stored IPv6 prefix.
    pub fn get_v6(&self, prefix: &Ipv6Prefix) -> Option<&V> {
        self.v6.get(prefix.network_u128(), prefix.len())
    }

    /// Visit all IPv4 entries.
    pub fn for_each_v4<F: FnMut(Ipv4Prefix, &V)>(&self, mut f: F) {
        self.v4.for_each(|bits, plen, v| {
            let addr = Ipv4Addr::from((bits >> 96) as u32);
            f(Ipv4Prefix::new(addr, plen), v);
        });
    }

    /// Visit all IPv6 entries.
    pub fn for_each_v6<F: FnMut(Ipv6Prefix, &V)>(&self, mut f: F) {
        self.v6.for_each(|bits, plen, v| {
            let addr = Ipv6Addr::from(bits);
            f(Ipv6Prefix::new(addr, plen), v);
        });
    }
}

/// One node of the reversed-label trie. `ids` aggregates the whole subtree:
/// every name inserted at or below this node, in insertion order.
#[derive(Debug, Clone, Default)]
struct SuffixNode {
    children: HashMap<Box<str>, SuffixNode>,
    ids: Vec<u32>,
}

/// A reversed-label suffix index over domain names.
///
/// Each name is inserted with a caller-chosen `u32` id (typically its row
/// index in some corpus) and its id is recorded at every node along the
/// reversed-label path, so a lookup returns the whole matching subtree's
/// postings without walking it. Ids must be inserted in non-decreasing
/// order; lookups then come back sorted ascending.
///
/// Keys are case-folded and a trailing root dot is ignored, so DNSDB
/// presentation names (`host.example.com.`) and normalized names index
/// identically. Wildcard SAN labels (`*`) are stored as ordinary labels.
#[derive(Debug, Clone, Default)]
pub struct SuffixIndex {
    root: SuffixNode,
    names: usize,
}

/// A parsed suffix-lookup key, derived from a pattern's mandatory literal
/// tail (see `iotmap_dregex::Regex::literal_suffix`). Two shapes exist:
///
/// * label-aligned (`.amazonaws.com.`): the literal starts at a label
///   boundary, so matching names are exactly one trie node's subtree;
/// * partial first label (`azure-devices.net.`): the leading fragment may
///   be the tail of a longer label (`x-azure-devices`), so the lookup
///   unions the matching children of the walked node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuffixQuery {
    /// Reversed full labels to walk (`["com", "amazonaws"]`).
    labels_rev: Vec<Box<str>>,
    /// Leading fragment that must end a further label, if not label-aligned.
    partial: Option<Box<str>>,
}

impl SuffixQuery {
    /// Parse a literal name suffix into a lookup key. The literal is
    /// case-folded; one trailing root dot is ignored. Returns `None` for
    /// literals that cannot constrain a name (empty, bare `.`, or
    /// containing empty interior labels like `a..b`) — callers fall back
    /// to a full scan.
    pub fn parse(literal: &str) -> Option<SuffixQuery> {
        let mut lit = literal.to_ascii_lowercase();
        if let Some(stripped) = lit.strip_suffix('.') {
            lit.truncate(stripped.len());
        }
        let aligned = lit.starts_with('.');
        let body = if aligned { &lit[1..] } else { &lit[..] };
        if body.is_empty() {
            return None;
        }
        let mut fragments: Vec<&str> = body.split('.').collect();
        if fragments.iter().any(|f| f.is_empty()) {
            return None;
        }
        let partial = if aligned {
            None
        } else {
            Some(Box::from(fragments.remove(0)))
        };
        Some(SuffixQuery {
            labels_rev: fragments.iter().rev().map(|f| Box::from(*f)).collect(),
            partial,
        })
    }
}

impl SuffixIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of names inserted.
    pub fn len(&self) -> usize {
        self.names
    }

    /// True if no names were inserted.
    pub fn is_empty(&self) -> bool {
        self.names == 0
    }

    /// Insert `name` under `id`. Ids must be non-decreasing across calls
    /// (insert corpus rows in order).
    pub fn insert(&mut self, name: &str, id: u32) {
        let name = name.strip_suffix('.').unwrap_or(name);
        let mut node = &mut self.root;
        node.ids.push(id);
        for label in name.rsplit('.') {
            let key = if label.bytes().any(|b| b.is_ascii_uppercase()) {
                Box::from(label.to_ascii_lowercase())
            } else {
                Box::from(label)
            };
            node = node.children.entry(key).or_default();
            node.ids.push(id);
        }
        self.names += 1;
    }

    /// All ids whose names end with the queried suffix, ascending and
    /// deduplicated (a name inserted once appears once).
    pub fn lookup(&self, query: &SuffixQuery) -> Vec<u32> {
        let mut node = &self.root;
        for label in &query.labels_rev {
            match node.children.get(label) {
                Some(child) => node = child,
                None => return Vec::new(),
            }
        }
        match &query.partial {
            // Label-aligned: the node's aggregated subtree is the answer.
            // (An id can appear several times when one record was inserted
            // under several names sharing the suffix; the list is sorted by
            // construction, so dedup is linear.)
            None => {
                let mut hits = node.ids.clone();
                hits.dedup();
                hits
            }
            // The fragment must end one more label: union the matching
            // children's postings (each already sorted by insertion order).
            Some(fragment) => {
                let mut hits: Vec<u32> = node
                    .children
                    .iter()
                    .filter(|(label, _)| label.ends_with(&**fragment))
                    .flat_map(|(_, child)| child.ids.iter().copied())
                    .collect();
                hits.sort_unstable();
                hits.dedup();
                hits
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn longest_match_prefers_most_specific() {
        let mut m = PrefixMap::new();
        m.insert_v4(p4("10.0.0.0/8"), "big");
        m.insert_v4(p4("10.1.0.0/16"), "mid");
        m.insert_v4(p4("10.1.2.0/24"), "small");

        let (pfx, v) = m.lookup_v4("10.1.2.3".parse().unwrap()).unwrap();
        assert_eq!(*v, "small");
        assert_eq!(pfx.to_string(), "10.1.2.0/24");

        let (pfx, v) = m.lookup_v4("10.1.9.9".parse().unwrap()).unwrap();
        assert_eq!(*v, "mid");
        assert_eq!(pfx.to_string(), "10.1.0.0/16");

        let (_, v) = m.lookup_v4("10.200.0.1".parse().unwrap()).unwrap();
        assert_eq!(*v, "big");
        assert!(m.lookup_v4("11.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn insert_replaces_and_reports_old_value() {
        let mut m = PrefixMap::new();
        assert!(m.insert_v4(p4("192.0.2.0/24"), 1).is_none());
        assert_eq!(m.insert_v4(p4("192.0.2.0/24"), 2), Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get_v4(&p4("192.0.2.0/24")), Some(&2));
    }

    #[test]
    fn default_route_matches_everything() {
        let mut m = PrefixMap::new();
        m.insert_v4(p4("0.0.0.0/0"), "default");
        let (pfx, v) = m.lookup_v4("8.8.8.8".parse().unwrap()).unwrap();
        assert_eq!(*v, "default");
        assert_eq!(pfx.len(), 0);
    }

    #[test]
    fn v6_longest_match() {
        let mut m = PrefixMap::new();
        m.insert_v6("2001:db8::/32".parse().unwrap(), "site");
        m.insert_v6("2001:db8:1::/48".parse().unwrap(), "pop");
        let (_, v) = m.lookup_v6("2001:db8:1::1".parse().unwrap()).unwrap();
        assert_eq!(*v, "pop");
        let (_, v) = m.lookup_v6("2001:db8:2::1".parse().unwrap()).unwrap();
        assert_eq!(*v, "site");
        assert!(m.lookup_v6("2002::1".parse().unwrap()).is_none());
    }

    #[test]
    fn mixed_family_lookup() {
        let mut m = PrefixMap::new();
        m.insert_v4(p4("10.0.0.0/8"), 4);
        m.insert_v6("2001:db8::/32".parse().unwrap(), 6);
        assert_eq!(m.lookup("10.1.1.1".parse().unwrap()), Some(&4));
        assert_eq!(m.lookup("2001:db8::1".parse().unwrap()), Some(&6));
        assert_eq!(m.lookup("2a00::1".parse().unwrap()), None);
    }

    #[test]
    fn for_each_visits_in_bit_order() {
        let mut m = PrefixMap::new();
        m.insert_v4(p4("128.0.0.0/1"), 'b');
        m.insert_v4(p4("0.0.0.0/1"), 'a');
        m.insert_v4(p4("192.0.0.0/2"), 'c');
        let mut seen = Vec::new();
        m.for_each_v4(|pfx, v| seen.push((pfx.to_string(), *v)));
        assert_eq!(
            seen,
            vec![
                ("0.0.0.0/1".to_string(), 'a'),
                ("128.0.0.0/1".to_string(), 'b'),
                ("192.0.0.0/2".to_string(), 'c'),
            ]
        );
    }

    #[test]
    fn bittrie_root_value() {
        let mut t = BitTrie::new();
        t.insert(0, 0, "root");
        assert_eq!(t.longest_match(u128::MAX, 128), Some((0, &"root")));
        assert_eq!(t.get(0, 0), Some(&"root"));
    }

    fn sample_index() -> SuffixIndex {
        let mut idx = SuffixIndex::new();
        for (id, name) in [
            "device1.iot.us-east-1.amazonaws.com",
            "a.azure-devices.net",
            "x-azure-devices.net", // partial-label lookalike, distinct 2LD
            "azure-devices.net",
            "*.iot.eu-west-1.amazonaws.com.",
            "plant7.eu1.mindsphere.io",
            "unrelated.example.org",
        ]
        .iter()
        .enumerate()
        {
            idx.insert(name, id as u32);
        }
        idx
    }

    #[test]
    fn label_aligned_suffix_lookup() {
        let idx = sample_index();
        let q = SuffixQuery::parse(".amazonaws.com.").unwrap();
        assert_eq!(idx.lookup(&q), vec![0, 4]);
        let q = SuffixQuery::parse(".mindsphere.io").unwrap();
        assert_eq!(idx.lookup(&q), vec![5]);
        let q = SuffixQuery::parse(".nosuch.tld").unwrap();
        assert!(idx.lookup(&q).is_empty());
    }

    #[test]
    fn partial_first_label_unions_matching_children() {
        let idx = sample_index();
        // "azure-devices.net." is not label-aligned: both the exact 2LD and
        // the "x-azure-devices" lookalike label end with the fragment.
        let q = SuffixQuery::parse("azure-devices.net.").unwrap();
        assert_eq!(idx.lookup(&q), vec![1, 2, 3]);
        // A longer fragment excludes the exact label.
        let q = SuffixQuery::parse("-azure-devices.net.").unwrap();
        assert_eq!(idx.lookup(&q), vec![2]);
    }

    #[test]
    fn suffix_index_case_folds_and_strips_root_dot() {
        let mut idx = SuffixIndex::new();
        idx.insert("Device.IoT.Example.COM.", 0);
        let q = SuffixQuery::parse(".example.com").unwrap();
        assert_eq!(idx.lookup(&q), vec![0]);
        let q = SuffixQuery::parse(".EXAMPLE.COM.").unwrap();
        assert_eq!(idx.lookup(&q), vec![0]);
    }

    #[test]
    fn duplicate_ids_from_multi_name_records_dedup() {
        let mut idx = SuffixIndex::new();
        // One record (id 7) carries two SANs under the same suffix.
        idx.insert("a.example.com", 7);
        idx.insert("b.example.com", 7);
        idx.insert("c.example.com", 9);
        let q = SuffixQuery::parse(".example.com").unwrap();
        assert_eq!(idx.lookup(&q), vec![7, 9]);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn degenerate_query_literals_are_rejected() {
        assert_eq!(SuffixQuery::parse(""), None);
        assert_eq!(SuffixQuery::parse("."), None);
        assert_eq!(SuffixQuery::parse(".."), None);
        assert_eq!(SuffixQuery::parse("a..b"), None);
        assert!(SuffixQuery::parse("com").is_some());
        assert!(SuffixQuery::parse(".com.").is_some());
    }

    #[test]
    fn root_partial_query_scans_top_level_labels() {
        let idx = sample_index();
        // No full label at all: fragment matches top-level labels directly.
        let q = SuffixQuery::parse("com").unwrap();
        assert_eq!(idx.lookup(&q), vec![0, 4]);
        let q = SuffixQuery::parse("et").unwrap();
        assert_eq!(idx.lookup(&q), vec![1, 2, 3]);
    }
}
