//! Deterministic random-number generation.
//!
//! Every stochastic decision in the synthetic world is driven by a
//! [`SimRng`] derived from a single seed, so that each experiment is exactly
//! reproducible from `(seed, scale)`. The generator is xoshiro256++ with
//! SplitMix64 seeding (the reference initialization recommended by the
//! xoshiro authors); child generators are *forked* by hashing a label into
//! the parent's stream, which decouples the randomness of independent
//! subsystems (provider catalogs, ISP lines, scan noise, …) from each other.

/// SplitMix64 step — used for seeding and label hashing.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label, for deterministic stream forking.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// xoshiro256++ deterministic PRNG.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child generator for a named subsystem. Forking
    /// with the same label always yields the same stream; different labels
    /// yield decorrelated streams.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut sm = self.s[0] ^ self.s[2] ^ fnv1a(label);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive a child generator from a numeric stream id.
    pub fn fork_idx(&self, idx: u64) -> SimRng {
        let mut sm = self.s[0] ^ self.s[2] ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)` using Lemire's unbiased method. Panics if
    /// `bound == 0`.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below bound must be positive");
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = (x as u128) * (bound as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "gen_range requires lo < hi");
        lo + self.gen_below(hi - lo)
    }

    /// Uniform signed range `[lo, hi)`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(hi > lo);
        lo.wrapping_add(self.gen_below((hi - lo) as u64) as i64)
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Choose a uniformly random element of a slice. Panics on empty input.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.gen_below(items.len() as u64) as usize]
    }

    /// Choose an index according to non-negative weights. Panics if all
    /// weights are zero or the slice is empty.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0,
            "choose_weighted requires positive total weight"
        );
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (reservoir when `k << n`).
    /// Panics if `k > n`. The result is sorted.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample more items than available");
        if k == 0 {
            return Vec::new();
        }
        // Floyd's algorithm: O(k) expected insertions.
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.gen_below(j as u64 + 1) as usize;
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_label_sensitive() {
        let root = SimRng::new(7);
        let mut a1 = root.fork("isp");
        let mut a2 = root.fork("isp");
        let mut b = root.fork("providers");
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_below_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            assert!(r.gen_below(7) < 7);
        }
        // All residues hit.
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.gen_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_uniformish() {
        let mut r = SimRng::new(9);
        let n = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[r.gen_range(0, 10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket should be within 10% of the expectation.
            assert!((c as f64 - n as f64 / 10.0).abs() < n as f64 / 100.0);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(4);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = SimRng::new(5);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut r = SimRng::new(6);
        let w = [1.0, 3.0];
        let ones = (0..100_000).filter(|_| r.choose_weighted(&w) == 1).count();
        assert!((72_000..78_000).contains(&ones), "ones {ones}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = SimRng::new(10);
        let s = r.sample_indices(50, 10);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&i| i < 50));
        // Edge cases.
        assert!(r.sample_indices(5, 0).is_empty());
        assert_eq!(r.sample_indices(5, 5).len(), 5);
    }

    #[test]
    fn gen_range_i64_negative() {
        let mut r = SimRng::new(11);
        for _ in 0..1000 {
            let x = r.gen_range_i64(-10, 10);
            assert!((-10..10).contains(&x));
        }
    }
}
