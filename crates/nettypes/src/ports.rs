//! Transport ports and the application protocols the paper tracks.
//!
//! §4.4 ("Protocol Support") and §5.5 ("Port Usage") revolve around the
//! observation that IoT backends serve IoT protocols on *unexpected* ports:
//! MQTT on 443 or 1884, CoAP on 5682/5686, ActiveMQ on 61616. The
//! [`AppProtocol::classify`] function implements the IANA-based labelling the
//! paper uses for Figure 11, which by design cannot see through port reuse —
//! that gap is one of the paper's findings.

use std::fmt;

/// Transport-layer protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Transport {
    Tcp,
    Udp,
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Transport::Tcp => "TCP",
            Transport::Udp => "UDP",
        })
    }
}

/// A (transport, port) pair — the granularity of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortProto {
    pub transport: Transport,
    pub port: u16,
}

impl PortProto {
    /// TCP port shorthand.
    pub const fn tcp(port: u16) -> Self {
        PortProto {
            transport: Transport::Tcp,
            port,
        }
    }

    /// UDP port shorthand.
    pub const fn udp(port: u16) -> Self {
        PortProto {
            transport: Transport::Udp,
            port,
        }
    }
}

impl fmt::Display for PortProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.transport, self.port)
    }
}

/// Well-known ports used across the study.
pub mod well_known {
    use super::PortProto;

    pub const HTTP: PortProto = PortProto::tcp(80);
    pub const HTTPS: PortProto = PortProto::tcp(443);
    pub const HTTPS_ALT: PortProto = PortProto::tcp(8443);
    /// Huawei's HTTPS application port.
    pub const HTTPS_HUAWEI: PortProto = PortProto::tcp(8943);
    pub const MQTT: PortProto = PortProto::tcp(1883);
    /// Baidu's non-standard MQTT port.
    pub const MQTT_ALT: PortProto = PortProto::tcp(1884);
    pub const MQTT_TLS: PortProto = PortProto::tcp(8883);
    pub const AMQP_TLS: PortProto = PortProto::tcp(5671);
    pub const COAP: PortProto = PortProto::udp(5683);
    pub const COAPS: PortProto = PortProto::udp(5684);
    /// Non-standard CoAP ports observed in provider documentation.
    pub const COAP_ALT: PortProto = PortProto::udp(5682);
    pub const COAP_ALT2: PortProto = PortProto::udp(5686);
    /// Apache ActiveMQ default port (the paper's D4 finding, §5.5).
    pub const ACTIVEMQ: PortProto = PortProto::tcp(61616);
    /// OPC-UA binary protocol (Siemens Mindsphere).
    pub const OPC_UA: PortProto = PortProto::tcp(4840);
    /// Cisco Kinetic's custom TCP ports.
    pub const KINETIC_A: PortProto = PortProto::tcp(9123);
    pub const KINETIC_B: PortProto = PortProto::tcp(9124);
}

/// Application protocols at the granularity the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppProtocol {
    Http,
    Https,
    Mqtt,
    MqttTls,
    Coap,
    CoapTls,
    Amqp,
    OpcUa,
    ActiveMq,
    /// Anything not mapped by IANA conventions.
    Other,
}

impl AppProtocol {
    /// The IANA-convention classification of a port, as used to label
    /// Figure 11. Deliberately *cannot* detect MQTT-over-443 — that is the
    /// methodological gap the paper highlights.
    pub fn classify(pp: PortProto) -> AppProtocol {
        use well_known::*;
        match pp {
            p if p == HTTP => AppProtocol::Http,
            p if p == HTTPS || p == HTTPS_ALT || p == HTTPS_HUAWEI => AppProtocol::Https,
            p if p == MQTT || p == MQTT_ALT => AppProtocol::Mqtt,
            p if p == MQTT_TLS => AppProtocol::MqttTls,
            p if p == COAP || p == COAPS || p == COAP_ALT || p == COAP_ALT2 => AppProtocol::Coap,
            p if p == AMQP_TLS => AppProtocol::Amqp,
            p if p == OPC_UA => AppProtocol::OpcUa,
            p if p == ACTIVEMQ => AppProtocol::ActiveMq,
            _ => AppProtocol::Other,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AppProtocol::Http => "HTTP",
            AppProtocol::Https => "HTTPS",
            AppProtocol::Mqtt => "MQTT",
            AppProtocol::MqttTls => "MQTT/TLS",
            AppProtocol::Coap => "CoAP",
            AppProtocol::CoapTls => "CoAPs",
            AppProtocol::Amqp => "AMQP",
            AppProtocol::OpcUa => "OPC-UA",
            AppProtocol::ActiveMq => "ActiveMQ",
            AppProtocol::Other => "Other",
        }
    }

    /// Is this one of the IoT-specific protocols (vs generic Web)?
    pub fn is_iot_specific(&self) -> bool {
        matches!(
            self,
            AppProtocol::Mqtt
                | AppProtocol::MqttTls
                | AppProtocol::Coap
                | AppProtocol::CoapTls
                | AppProtocol::Amqp
                | AppProtocol::OpcUa
                | AppProtocol::ActiveMq
        )
    }
}

impl fmt::Display for AppProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::well_known::*;
    use super::*;

    #[test]
    fn classify_standard_ports() {
        assert_eq!(AppProtocol::classify(HTTPS), AppProtocol::Https);
        assert_eq!(AppProtocol::classify(MQTT), AppProtocol::Mqtt);
        assert_eq!(AppProtocol::classify(MQTT_TLS), AppProtocol::MqttTls);
        assert_eq!(AppProtocol::classify(AMQP_TLS), AppProtocol::Amqp);
        assert_eq!(AppProtocol::classify(COAP_ALT2), AppProtocol::Coap);
        assert_eq!(AppProtocol::classify(ACTIVEMQ), AppProtocol::ActiveMq);
    }

    #[test]
    fn classify_nonstandard_mqtt_ports() {
        // Baidu's 1884 still looks like MQTT by neighbourhood convention...
        assert_eq!(AppProtocol::classify(MQTT_ALT), AppProtocol::Mqtt);
        // ...but MQTT tunnelled over 443 is invisible: classified as HTTPS.
        assert_eq!(
            AppProtocol::classify(PortProto::tcp(443)),
            AppProtocol::Https
        );
    }

    #[test]
    fn classify_unknown_is_other() {
        assert_eq!(
            AppProtocol::classify(PortProto::udp(12345)),
            AppProtocol::Other
        );
        // CoAP is UDP; TCP/5683 is not CoAP.
        assert_eq!(
            AppProtocol::classify(PortProto::tcp(5683)),
            AppProtocol::Other
        );
    }

    #[test]
    fn iot_specific_split() {
        assert!(AppProtocol::MqttTls.is_iot_specific());
        assert!(AppProtocol::Amqp.is_iot_specific());
        assert!(!AppProtocol::Https.is_iot_specific());
        assert!(!AppProtocol::Other.is_iot_specific());
    }

    #[test]
    fn display_forms() {
        assert_eq!(PortProto::tcp(8883).to_string(), "TCP/8883");
        assert_eq!(PortProto::udp(5683).to_string(), "UDP/5683");
        assert_eq!(AppProtocol::MqttTls.to_string(), "MQTT/TLS");
    }
}
