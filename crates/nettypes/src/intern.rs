//! Deterministic string interning: compact `u32` symbols for the hot
//! string-keyed tables (provider names, AS labels, domain and hostname
//! sets).
//!
//! At paper scale the pipeline shuffles millions of records whose keys
//! are a few hundred distinct strings; carrying owned `String`s through
//! the hot paths costs allocation, hashing, and cache misses on every
//! touch. An [`Interner`] assigns each distinct string a dense
//! [`Sym`] in **first-insertion order**, so comparisons become integer
//! equality and per-key state becomes a flat `Vec` indexed by
//! [`Sym::index`].
//!
//! Determinism contract: ID assignment is a pure function of the
//! *sequence* of first occurrences. Sharded construction stays
//! byte-identical to serial construction because `iotmap-par` deals
//! contiguous shards and merges in shard order — interning each chunk
//! locally and [`Interner::merge`]-ing in chunk order reproduces the
//! serial first-occurrence sequence exactly (pinned by the
//! chunk-invariance tests below).

use std::collections::HashMap;

/// A compact handle to an interned string. Only meaningful together
/// with the [`Interner`] that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The dense table index this symbol maps to (`0..interner.len()`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw id, for serialization.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuild a symbol from a serialized raw id. The caller is
    /// responsible for pairing it with the table that issued it.
    pub fn from_raw(raw: u32) -> Sym {
        Sym(raw)
    }
}

/// A string table with dense, first-insertion-order ids.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// An empty table sized for `n` distinct strings.
    pub fn with_capacity(n: usize) -> Interner {
        Interner {
            names: Vec::with_capacity(n),
            ids: HashMap::with_capacity(n),
        }
    }

    /// Insert-or-get: the symbol for `name`, assigning the next dense id
    /// on first sight.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&id) = self.ids.get(name) {
            return Sym(id);
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow: > u32::MAX strings");
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        Sym(id)
    }

    /// The symbol for `name` if it has been interned.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.ids.get(name).copied().map(Sym)
    }

    /// The string a symbol was issued for.
    ///
    /// Panics if `sym` was issued by a different (larger) table.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned strings in id order (so `names()[sym.index()]`
    /// resolves a symbol without borrowing the whole table).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// `(sym, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }

    /// Absorb `other` (in *its* id order), returning the remap table:
    /// `remap[other_sym.index()]` is the symbol in `self` for the same
    /// string. Merging chunk tables in chunk order reproduces serial
    /// first-occurrence ids — the law the determinism contract rests on.
    pub fn merge(&mut self, other: &Interner) -> Vec<Sym> {
        other.names.iter().map(|n| self.intern(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_dense_ids() {
        let mut t = Interner::new();
        let a = t.intern("aws");
        let b = t.intern("azure");
        let c = t.intern("tuya");
        assert_eq!((a.index(), b.index(), c.index()), (0, 1, 2));
        assert_eq!(t.resolve(b), "azure");
        // Re-interning returns the original id, untouched table.
        assert_eq!(t.intern("aws"), a);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get("tuya"), Some(c));
        assert_eq!(t.get("absent"), None);
        assert_eq!(Sym::from_raw(c.raw()), c);
        let collected: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(collected, ["aws", "azure", "tuya"]);
    }

    #[test]
    fn merge_remaps_into_issuing_order() {
        let mut left = Interner::new();
        left.intern("aws");
        left.intern("azure");
        let mut right = Interner::new();
        let r_tuya = right.intern("tuya");
        let r_aws = right.intern("aws");
        let remap = right.merge(&left);
        // "aws" already existed in `right`; "azure" got the next id.
        assert_eq!(remap, vec![r_aws, Sym::from_raw(2)]);
        assert_eq!(right.resolve(r_tuya), "tuya");
        assert_eq!(right.resolve(Sym::from_raw(2)), "azure");
    }

    /// The thread-invariance law: interning contiguous chunks separately
    /// and merging in chunk order assigns exactly the ids serial
    /// interning would. Exercised over every chunk size of a stream with
    /// heavy duplication, which is how `iotmap-par` shards look.
    #[test]
    fn chunked_build_matches_serial_for_every_chunk_size() {
        let stream: Vec<String> = (0..97).map(|i| format!("name-{}", i * 7 % 13)).collect();
        let mut serial = Interner::new();
        let serial_syms: Vec<Sym> = stream.iter().map(|s| serial.intern(s)).collect();

        for chunk in 1..=stream.len() {
            let mut merged = Interner::new();
            let mut remapped: Vec<Sym> = Vec::new();
            for shard in stream.chunks(chunk) {
                let mut local = Interner::new();
                let local_syms: Vec<Sym> = shard.iter().map(|s| local.intern(s)).collect();
                let remap = merged.merge(&local);
                remapped.extend(local_syms.iter().map(|s| remap[s.index()]));
            }
            assert_eq!(merged.names(), serial.names(), "chunk size {chunk}");
            assert_eq!(remapped, serial_syms, "chunk size {chunk}");
        }
    }
}
