//! # iotmap-scenario — declarative world-event chaos
//!
//! A scenario file is a `key = value`-with-sections config (the same
//! [`iotmap_nettypes::kvconf`] syntax the fault-plan format uses) that
//! compiles into a seeded, deterministic [`EventTimeline`] of typed world
//! events: provider region migrations, anycast/CDN fronting flips,
//! certificate-rotation storms, plus the §6 outage/BGP/blocklist events
//! re-expressed declaratively. The timeline installs into a generated
//! [`World`] through [`World::install_timeline`]; scan views apply the
//! transforms date-aware, so scenarios compose with the longitudinal
//! day-advance machinery unchanged.
//!
//! The other half of the crate is *resilience measurement*: given the
//! artifacts of an event-free baseline run and a scenario run over the
//! same `(config, faults, threads)`, [`measure_resilience`] computes
//! per-event precision/recall/footprint-stability deltas against ground
//! truth — the evidence that the pipeline degraded gracefully instead of
//! crashing — and publishes them as `scenario.*` gauges in the obs run
//! report.
//!
//! ```text
//! [scenario]
//! name = cert-storm
//! seed = 7
//!
//! [cert_storm]
//! provider = microsoft
//! day = 1
//! reissue = 0.3
//! expiry = 0.1
//! ```

use iotmap_core::{DiscoveryResult, Footprint};
use iotmap_nettypes::kvconf::{self, Section};
use iotmap_nettypes::{Asn, Date, Ipv4Prefix, SimDuration, StudyPeriod};
use iotmap_world::{BgpStreamEventKind, EventTimeline, OutageEvent, ScheduledEvent, World};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::net::IpAddr;

/// A parsed, validated scenario: a named, seeded event timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub name: String,
    pub timeline: EventTimeline,
}

impl Scenario {
    /// Parse a scenario file. Section and key errors carry 1-based line
    /// numbers; provider, cloud, and region names are validated against
    /// the static catalogs here so the pipeline's world stage never has
    /// to fail on one.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let sections = kvconf::parse(text)?;
        if let Some(entry) = sections[0].entries.first() {
            return Err(format!(
                "line {}: scenario entries belong in a section (expected [scenario], \
                 [outage], [bgp_incident], [blocklist], [migration], [fronting_flip], \
                 or [cert_storm] before {:?})",
                entry.line, entry.key
            ));
        }
        let mut name = None;
        let mut seed = 0u64;
        let mut events = Vec::new();
        let providers = provider_names();
        for section in &sections[1..] {
            let sname = section.name.as_deref().unwrap_or_default();
            match sname {
                "scenario" => {
                    for e in &section.entries {
                        match e.key.as_str() {
                            "name" => name = Some(e.value.clone()),
                            "seed" => {
                                seed = e
                                    .value
                                    .parse()
                                    .map_err(|err| format!("line {}: bad seed: {err}", e.line))?;
                            }
                            other => {
                                return Err(format!(
                                    "line {}: unknown key {other:?} in [scenario]",
                                    e.line
                                ))
                            }
                        }
                    }
                }
                "outage" => events.push(parse_outage(section)?),
                "bgp_incident" => events.push(parse_bgp_incident(section)?),
                "blocklist" => events.push(parse_blocklist(section, &providers)?),
                "migration" => events.push(parse_migration(section, &providers)?),
                "fronting_flip" => events.push(parse_flip(section, &providers)?),
                "cert_storm" => events.push(parse_storm(section, &providers)?),
                other => return Err(format!("line {}: unknown section [{other}]", section.line)),
            }
        }
        let name = name.ok_or("missing [scenario] section with a `name` key")?;
        Ok(Scenario {
            name,
            timeline: EventTimeline { seed, events },
        })
    }

    /// A stable identity over everything artifact-affecting: the seed and
    /// the full event list. Folded into run fingerprints so scenario runs
    /// never collide with baseline runs in caches or checkpoints.
    pub fn fingerprint(&self) -> u64 {
        iotmap_faults::hash_str(&format!(
            "scenario;seed={};{:?}",
            self.timeline.seed, self.timeline.events
        ))
    }

    /// Short human labels for each event, in file order — the row keys of
    /// the resilience report.
    pub fn event_labels(&self) -> Vec<String> {
        self.timeline.events.iter().map(event_label).collect()
    }
}

/// Label one event: `migration:bosch@2`, `outage:aws/us-east-1`, ….
pub fn event_label(event: &ScheduledEvent) -> String {
    match event {
        ScheduledEvent::Outage(ev) => format!("outage:{}/{}", ev.cloud, ev.region),
        ScheduledEvent::BgpIncident { kind, asn, .. } => {
            let k = match kind {
                BgpStreamEventKind::Leak => "leak",
                BgpStreamEventKind::PossibleHijack => "hijack",
                BgpStreamEventKind::AsOutage => "as-outage",
            };
            format!("bgp:{k}:AS{}", asn.value())
        }
        ScheduledEvent::BlocklistPlant {
            provider, count, ..
        } => format!("blocklist:{provider}x{count}"),
        ScheduledEvent::ProviderRegionMigration {
            provider,
            day,
            to_cloud,
            to_region,
            ..
        } => format!("migration:{provider}@{day}->{to_cloud}/{to_region}"),
        ScheduledEvent::AnycastFrontingFlip {
            provider,
            day,
            into_fronting,
        } => {
            let dir = if *into_fronting { "into" } else { "out" };
            format!("flip:{provider}@{day}:{dir}")
        }
        ScheduledEvent::CertRotationStorm { provider, day, .. } => {
            format!("storm:{provider}@{day}")
        }
    }
}

// ----------------------------------------------------------- section parsing

fn provider_names() -> Vec<&'static str> {
    iotmap_world::providers::catalog()
        .iter()
        .map(|p| p.name)
        .collect()
}

fn required<'s>(section: &'s Section, key: &str) -> Result<&'s kvconf::Entry, String> {
    section.get(key).ok_or_else(|| {
        format!(
            "line {}: [{}] is missing required key `{key}`",
            section.line,
            section.name.as_deref().unwrap_or_default()
        )
    })
}

fn known_keys(section: &Section, allowed: &[&str]) -> Result<(), String> {
    for e in &section.entries {
        if !allowed.contains(&e.key.as_str()) {
            return Err(format!(
                "line {}: unknown key {:?} in [{}]",
                e.line,
                e.key,
                section.name.as_deref().unwrap_or_default()
            ));
        }
    }
    Ok(())
}

fn parse_rate(e: &kvconf::Entry) -> Result<f64, String> {
    let r: f64 = e
        .value
        .parse()
        .map_err(|err| format!("line {}: bad rate {:?}: {err}", e.line, e.value))?;
    if !(0.0..=1.0).contains(&r) {
        return Err(format!("line {}: rate {r} outside [0, 1]", e.line));
    }
    Ok(r)
}

fn parse_day(e: &kvconf::Entry) -> Result<u32, String> {
    e.value
        .parse()
        .map_err(|err| format!("line {}: bad day offset: {err}", e.line))
}

fn parse_provider(e: &kvconf::Entry, providers: &[&'static str]) -> Result<String, String> {
    if !providers.contains(&e.value.as_str()) {
        return Err(format!(
            "line {}: unknown provider {:?} (catalog: {})",
            e.line,
            e.value,
            providers.join(", ")
        ));
    }
    Ok(e.value.clone())
}

/// Validate a `(cloud, region)` pair against the static cloud catalog.
fn check_cloud_region(
    cloud: &kvconf::Entry,
    region: &kvconf::Entry,
) -> Result<(String, String), String> {
    let geo = iotmap_world::GeoDb::standard();
    let clouds = iotmap_world::CloudCatalog::standard(&geo);
    let Some(c) = clouds.clouds.iter().find(|c| c.name == cloud.value) else {
        return Err(format!(
            "line {}: unknown cloud {:?}",
            cloud.line, cloud.value
        ));
    };
    if !c.regions.iter().any(|r| r.code == region.value) {
        return Err(format!(
            "line {}: cloud {:?} has no region {:?}",
            region.line, cloud.value, region.value
        ));
    }
    Ok((cloud.value.clone(), region.value.clone()))
}

/// Parse `YYYY-MM-DDTHH:MM..YYYY-MM-DDTHH:MM` into a study period.
fn parse_window(e: &kvconf::Entry) -> Result<StudyPeriod, String> {
    let (a, b) = e
        .value
        .split_once("..")
        .ok_or_else(|| format!("line {}: window is not `start..end`", e.line))?;
    let point = |s: &str| -> Result<_, String> {
        let (date, time) = s
            .trim()
            .split_once('T')
            .ok_or_else(|| format!("line {}: expected YYYY-MM-DDTHH:MM in {s:?}", e.line))?;
        let date: Date = date
            .parse()
            .map_err(|err| format!("line {}: {err}", e.line))?;
        let (h, m) = time
            .split_once(':')
            .ok_or_else(|| format!("line {}: expected HH:MM in {s:?}", e.line))?;
        let h: u64 = h
            .parse()
            .map_err(|err| format!("line {}: bad hour: {err}", e.line))?;
        let m: u64 = m
            .parse()
            .map_err(|err| format!("line {}: bad minute: {err}", e.line))?;
        if h >= 24 || m >= 60 {
            return Err(format!("line {}: time {s:?} out of range", e.line));
        }
        Ok(date.midnight() + SimDuration::minutes(h * 60 + m))
    };
    let (start, end) = (point(a)?, point(b)?);
    if end <= start {
        return Err(format!("line {}: window end must be after start", e.line));
    }
    Ok(StudyPeriod::new(start, end))
}

fn parse_outage(section: &Section) -> Result<ScheduledEvent, String> {
    known_keys(
        section,
        &[
            "cloud",
            "region",
            "window",
            "downstream_residual",
            "upstream_residual",
            "silence_prob",
            "spillover",
        ],
    )?;
    let (cloud, region) =
        check_cloud_region(required(section, "cloud")?, required(section, "region")?)?;
    let defaults = OutageEvent::aws_dec_2021();
    let mut ev = OutageEvent {
        cloud,
        region,
        ..defaults
    };
    if let Some(e) = section.get("window") {
        ev.window = parse_window(e)?;
    }
    if let Some(e) = section.get("downstream_residual") {
        ev.downstream_residual = parse_rate(e)?;
    }
    if let Some(e) = section.get("upstream_residual") {
        ev.upstream_residual = parse_rate(e)?;
    }
    if let Some(e) = section.get("silence_prob") {
        ev.silence_prob = parse_rate(e)?;
    }
    if let Some(e) = section.get("spillover") {
        ev.spillover = parse_rate(e)?;
    }
    Ok(ScheduledEvent::Outage(ev))
}

fn parse_bgp_incident(section: &Section) -> Result<ScheduledEvent, String> {
    known_keys(section, &["kind", "asn", "prefix"])?;
    let kind_entry = required(section, "kind")?;
    let kind = match kind_entry.value.as_str() {
        "leak" => BgpStreamEventKind::Leak,
        "hijack" => BgpStreamEventKind::PossibleHijack,
        "as-outage" => BgpStreamEventKind::AsOutage,
        other => {
            return Err(format!(
                "line {}: unknown incident kind {other:?} (leak, hijack, as-outage)",
                kind_entry.line
            ))
        }
    };
    let asn_entry = required(section, "asn")?;
    let asn: u32 = asn_entry
        .value
        .parse()
        .map_err(|err| format!("line {}: bad asn: {err}", asn_entry.line))?;
    let prefix = match section.get("prefix") {
        Some(e) => Some(
            e.value
                .parse::<Ipv4Prefix>()
                .map_err(|err| format!("line {}: bad prefix: {err}", e.line))?,
        ),
        None => None,
    };
    Ok(ScheduledEvent::BgpIncident {
        kind,
        asn: Asn(asn),
        prefix,
    })
}

fn parse_blocklist(
    section: &Section,
    providers: &[&'static str],
) -> Result<ScheduledEvent, String> {
    known_keys(section, &["provider", "count", "category"])?;
    let provider = parse_provider(required(section, "provider")?, providers)?;
    let count_entry = required(section, "count")?;
    let count: u32 = count_entry
        .value
        .parse()
        .map_err(|err| format!("line {}: bad count: {err}", count_entry.line))?;
    let category = section
        .get("category")
        .map(|e| e.value.clone())
        .unwrap_or_else(|| "personal-blocklist".to_string());
    Ok(ScheduledEvent::BlocklistPlant {
        provider,
        count,
        category,
    })
}

fn parse_migration(
    section: &Section,
    providers: &[&'static str],
) -> Result<ScheduledEvent, String> {
    known_keys(
        section,
        &["provider", "day", "fraction", "to_cloud", "to_region"],
    )?;
    let provider = parse_provider(required(section, "provider")?, providers)?;
    let day = parse_day(required(section, "day")?)?;
    let fraction = parse_rate(required(section, "fraction")?)?;
    let (to_cloud, to_region) = check_cloud_region(
        required(section, "to_cloud")?,
        required(section, "to_region")?,
    )?;
    Ok(ScheduledEvent::ProviderRegionMigration {
        provider,
        day,
        fraction,
        to_cloud,
        to_region,
    })
}

fn parse_flip(section: &Section, providers: &[&'static str]) -> Result<ScheduledEvent, String> {
    known_keys(section, &["provider", "day", "direction"])?;
    let provider = parse_provider(required(section, "provider")?, providers)?;
    let day = parse_day(required(section, "day")?)?;
    let dir_entry = required(section, "direction")?;
    let into_fronting = match dir_entry.value.as_str() {
        "into" => true,
        "out" => false,
        other => {
            return Err(format!(
                "line {}: direction must be `into` or `out`, not {other:?}",
                dir_entry.line
            ))
        }
    };
    Ok(ScheduledEvent::AnycastFrontingFlip {
        provider,
        day,
        into_fronting,
    })
}

fn parse_storm(section: &Section, providers: &[&'static str]) -> Result<ScheduledEvent, String> {
    known_keys(section, &["provider", "day", "reissue", "expiry"])?;
    let provider = parse_provider(required(section, "provider")?, providers)?;
    let day = parse_day(required(section, "day")?)?;
    let reissue_fraction = match section.get("reissue") {
        Some(e) => parse_rate(e)?,
        None => 0.0,
    };
    let expiry_fraction = match section.get("expiry") {
        Some(e) => parse_rate(e)?,
        None => 0.0,
    };
    if reissue_fraction == 0.0 && expiry_fraction == 0.0 {
        return Err(format!(
            "line {}: [cert_storm] needs a non-zero `reissue` or `expiry` fraction",
            section.line
        ));
    }
    Ok(ScheduledEvent::CertRotationStorm {
        provider,
        day,
        reissue_fraction,
        expiry_fraction,
    })
}

// ------------------------------------------------------ resilience measures

/// Per-provider degradation of one event, as deltas against the event-free
/// baseline run. Permille units keep the values exact in JSON.
#[derive(Debug, Clone)]
pub struct ProviderDelta {
    pub provider: String,
    /// Scenario precision minus baseline precision, in permille.
    pub precision_delta_pm: i64,
    /// Scenario recall minus baseline recall, in permille.
    pub recall_delta_pm: i64,
    /// Jaccard similarity of the provider's footprint location labels
    /// between baseline and scenario, in permille (1000 = unchanged).
    pub footprint_stability_pm: i64,
    /// IPs discovered for the provider in the scenario run.
    pub discovered: usize,
}

/// The resilience rows of one scheduled event.
#[derive(Debug, Clone)]
pub struct EventResilience {
    pub label: String,
    pub providers: Vec<ProviderDelta>,
}

fn precision_recall(discovered: &HashSet<IpAddr>, truth: &HashSet<IpAddr>) -> (f64, f64) {
    if discovered.is_empty() || truth.is_empty() {
        return (0.0, 0.0);
    }
    let hit = discovered.intersection(truth).count() as f64;
    (hit / discovered.len() as f64, hit / truth.len() as f64)
}

fn footprint_labels(fp: Option<&Footprint>) -> BTreeSet<String> {
    fp.map(|f| {
        f.per_ip
            .values()
            .map(|l| l.label.clone())
            .collect::<BTreeSet<_>>()
    })
    .unwrap_or_default()
}

fn jaccard_pm(a: &BTreeSet<String>, b: &BTreeSet<String>) -> i64 {
    if a.is_empty() && b.is_empty() {
        return 1000;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    (inter / union * 1000.0).round() as i64
}

/// Ground truth for a provider under the scenario: every server IP, plus
/// the post-migration addresses the timeline assigned.
fn scenario_truth(world: &World, pidx: usize) -> HashSet<IpAddr> {
    let mut truth = world.true_ips(pidx);
    for (sid, m) in &world.timeline.migrations {
        if world.servers[*sid].provider == pidx {
            truth.insert(IpAddr::V4(m.new_ip));
        }
    }
    truth
}

/// The providers an event touches; `None` means "measure across all of
/// them" (outages hit every provider on the cloud; BGP incidents should
/// hit none).
fn event_providers(world: &World, event: &ScheduledEvent) -> Vec<String> {
    match event {
        ScheduledEvent::ProviderRegionMigration { provider, .. }
        | ScheduledEvent::AnycastFrontingFlip { provider, .. }
        | ScheduledEvent::CertRotationStorm { provider, .. }
        | ScheduledEvent::BlocklistPlant { provider, .. } => vec![provider.clone()],
        ScheduledEvent::Outage(ev) => {
            let mut on_cloud: Vec<String> = world
                .providers
                .iter()
                .filter(|p| {
                    p.sites.iter().any(|s| {
                        matches!(
                            &s.hosting,
                            iotmap_world::providers::SiteHosting::Cloud { cloud, .. }
                                if *cloud == ev.cloud
                        )
                    })
                })
                .map(|p| p.name.to_string())
                .collect();
            on_cloud.sort();
            on_cloud
        }
        ScheduledEvent::BgpIncident { .. } => {
            world.providers.iter().map(|p| p.name.to_string()).collect()
        }
    }
}

/// Compare a scenario run against its event-free baseline, per event.
///
/// `world` is the *scenario* world (its installed timeline supplies the
/// migrated ground truth); the baseline artifacts come from a run of the
/// same `(config, faults, threads)` without a scenario. Results are also
/// published as `scenario.<label>.<provider>.*` gauges so the obs run
/// report can render its Resilience section.
pub fn measure_resilience(
    scenario: &Scenario,
    world: &World,
    baseline_discovery: &DiscoveryResult,
    baseline_footprints: &HashMap<String, Footprint>,
    run_discovery: &DiscoveryResult,
    run_footprints: &HashMap<String, Footprint>,
) -> Vec<EventResilience> {
    let mut out = Vec::new();
    for event in &scenario.timeline.events {
        let label = event_label(event);
        let mut providers = Vec::new();
        for pname in event_providers(world, event) {
            let Some(pidx) = world.providers.iter().position(|p| p.name == pname) else {
                continue;
            };
            let baseline_ips: HashSet<IpAddr> = baseline_discovery
                .get(&pname)
                .map(|p| p.ips.keys().copied().collect())
                .unwrap_or_default();
            let run_ips: HashSet<IpAddr> = run_discovery
                .get(&pname)
                .map(|p| p.ips.keys().copied().collect())
                .unwrap_or_default();
            let (bp, br) = precision_recall(&baseline_ips, &world.true_ips(pidx));
            let (sp, sr) = precision_recall(&run_ips, &scenario_truth(world, pidx));
            let stability = jaccard_pm(
                &footprint_labels(baseline_footprints.get(&pname)),
                &footprint_labels(run_footprints.get(&pname)),
            );
            let delta = ProviderDelta {
                provider: pname.clone(),
                precision_delta_pm: ((sp - bp) * 1000.0).round() as i64,
                recall_delta_pm: ((sr - br) * 1000.0).round() as i64,
                footprint_stability_pm: stability,
                discovered: run_ips.len(),
            };
            let prefix = format!("scenario.{label}.{pname}");
            iotmap_obs::gauge!(
                format!("{prefix}.precision_delta_pm"),
                delta.precision_delta_pm
            );
            iotmap_obs::gauge!(format!("{prefix}.recall_delta_pm"), delta.recall_delta_pm);
            iotmap_obs::gauge!(
                format!("{prefix}.footprint_stability_pm"),
                delta.footprint_stability_pm
            );
            providers.push(delta);
        }
        out.push(EventResilience { label, providers });
    }
    iotmap_obs::count!("scenario.events", scenario.timeline.events.len() as u64);
    iotmap_obs::count!("scenario.compile_skipped", world.timeline.skipped);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CERT_STORM: &str = "\
[scenario]
name = cert-storm
seed = 7

[cert_storm]
provider = microsoft
day = 1
reissue = 0.3
expiry = 0.1
";

    #[test]
    fn parses_full_scenario() {
        let text = "\
# full-surface scenario
[scenario]
name = everything
seed = 99

[outage]
cloud = aws
region = us-east-1
window = 2021-12-07T15:30..2021-12-07T22:30

[bgp_incident]
kind = hijack
asn = 64500
prefix = 130.1.0.0/16

[blocklist]
provider = baidu
count = 3
category = malware

[migration]
provider = bosch
day = 2
fraction = 0.4
to_cloud = aws
to_region = ap-southeast-1

[fronting_flip]
provider = siemens
day = 3
direction = into

[cert_storm]
provider = microsoft
day = 1
reissue = 0.25
expiry = 0.05
";
        let sc = Scenario::parse(text).unwrap();
        assert_eq!(sc.name, "everything");
        assert_eq!(sc.timeline.seed, 99);
        assert_eq!(sc.timeline.events.len(), 6);
        assert_eq!(
            sc.event_labels(),
            vec![
                "outage:aws/us-east-1",
                "bgp:hijack:AS64500",
                "blocklist:baidux3",
                "migration:bosch@2->aws/ap-southeast-1",
                "flip:siemens@3:into",
                "storm:microsoft@1",
            ]
        );
        match &sc.timeline.events[0] {
            ScheduledEvent::Outage(ev) => {
                assert_eq!(ev.window, StudyPeriod::aws_outage_window());
                assert_eq!(ev.downstream_residual, 0.5);
            }
            other => panic!("expected outage, got {other:?}"),
        }
    }

    #[test]
    fn aws_outage_file_matches_builtin_event() {
        let text = "\
[scenario]
name = aws-dec-2021
seed = 1

[outage]
cloud = aws
region = us-east-1
window = 2021-12-07T15:30..2021-12-07T22:30
downstream_residual = 0.5
upstream_residual = 0.65
silence_prob = 0.08
spillover = 0.05
";
        let sc = Scenario::parse(text).unwrap();
        assert_eq!(
            sc.timeline.events,
            vec![ScheduledEvent::Outage(OutageEvent::aws_dec_2021())]
        );
    }

    #[test]
    fn rejects_unknown_names_with_line_numbers() {
        let err = Scenario::parse(
            "[scenario]\nname = x\n\n[migration]\nprovider = nonesuch\nday = 0\nfraction = 0.5\nto_cloud = aws\nto_region = us-east-1\n",
        )
        .unwrap_err();
        assert!(err.starts_with("line 5: unknown provider"), "{err}");
        let err = Scenario::parse(
            "[scenario]\nname = x\n\n[migration]\nprovider = bosch\nday = 0\nfraction = 0.5\nto_cloud = aws\nto_region = mars-central-7\n",
        )
        .unwrap_err();
        assert!(err.contains("no region \"mars-central-7\""), "{err}");
        let err = Scenario::parse("[scenario]\nname = x\n\n[volcano]\n").unwrap_err();
        assert_eq!(err, "line 4: unknown section [volcano]");
        let err = Scenario::parse("stray = 1\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn rejects_bad_values() {
        let err = Scenario::parse(
            "[scenario]\nname = x\n\n[cert_storm]\nprovider = microsoft\nday = 1\nreissue = 1.5\n",
        )
        .unwrap_err();
        assert_eq!(err, "line 7: rate 1.5 outside [0, 1]");
        let err = Scenario::parse(
            "[scenario]\nname = x\n\n[cert_storm]\nprovider = microsoft\nday = 1\n",
        )
        .unwrap_err();
        assert!(err.contains("non-zero"), "{err}");
        let err = Scenario::parse(
            "[scenario]\nname = x\n\n[fronting_flip]\nprovider = siemens\nday = 1\ndirection = sideways\n",
        )
        .unwrap_err();
        assert!(err.contains("`into` or `out`"), "{err}");
        assert!(
            Scenario::parse("[outage]\ncloud = aws\nregion = us-east-1\n")
                .unwrap_err()
                .contains("missing [scenario]")
        );
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = Scenario::parse(CERT_STORM).unwrap();
        let b = Scenario::parse(CERT_STORM).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Scenario::parse(&CERT_STORM.replace("seed = 7", "seed = 8")).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = Scenario::parse(&CERT_STORM.replace("reissue = 0.3", "reissue = 0.2")).unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn measures_degradation_against_baseline() {
        use iotmap_core::discovery::{IpEvidence, ProviderDiscovery};
        use iotmap_world::WorldConfig;

        let mut world = World::generate(&WorldConfig::small(42));
        let sc = Scenario::parse(CERT_STORM).unwrap();
        world.install_timeline(&sc.timeline, &sc.name);

        let m = world.provider_index("microsoft");
        let truth: Vec<IpAddr> = {
            let mut v: Vec<IpAddr> = world.true_ips(m).into_iter().collect();
            v.sort();
            v
        };
        let discovery_over = |ips: &[IpAddr]| {
            DiscoveryResult::from_providers(vec![ProviderDiscovery {
                name: "microsoft".to_string(),
                ips: ips.iter().map(|ip| (*ip, IpEvidence::default())).collect(),
                domains: Default::default(),
            }])
        };
        // Baseline finds everything; the scenario run lost a quarter.
        let baseline = discovery_over(&truth);
        let degraded = discovery_over(&truth[..truth.len() * 3 / 4]);
        let rows = measure_resilience(
            &sc,
            &world,
            &baseline,
            &HashMap::new(),
            &degraded,
            &HashMap::new(),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].label, "storm:microsoft@1");
        let p = &rows[0].providers[0];
        assert_eq!(p.provider, "microsoft");
        assert!(
            p.recall_delta_pm < -200,
            "recall delta {}",
            p.recall_delta_pm
        );
        assert_eq!(p.precision_delta_pm, 0);
        assert_eq!(p.footprint_stability_pm, 1000);
        assert_eq!(p.discovered, truth.len() * 3 / 4);
    }
}
