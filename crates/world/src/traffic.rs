//! The ISP traffic simulator: ground-truth flows → border router →
//! analysis sinks.
//!
//! For every subscriber line, every device generates sessions according to
//! its provider's traffic profile (diurnal shape, volume, port mix,
//! down/up asymmetry), aimed at the gateway servers its DNS resolution
//! returns that day. Scanner lines probe broad swaths of the backend
//! address space. Everything passes through the ISP's
//! [`iotmap_netflow::BorderRouter`] (sampling, BCP 38, anonymization)
//! before it reaches any sink — the analyses only ever see what the paper's
//! authors saw.

use crate::build::World;
use crate::isp::{Device, ScannerKind, SubscriberLine};
use crate::providers::DomainStyle;
use crate::server::ServerId;
use iotmap_dns::{resolve, ResolutionContext, RrType};
use iotmap_faults::NetflowFaults;
use iotmap_netflow::{BorderRouter, Direction, FlowFold, FlowRecord, FlowSink, LineId};
use iotmap_nettypes::{dist, Continent, Date, DomainName, SimDuration, SimRng, StudyPeriod};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// Lines per generation block: bounds buffered flows regardless of
/// population size.
const BLOCK_LINES: usize = 2048;

/// Adapter collecting routed exports into a block-local buffer so the
/// streaming fold can shard over them.
struct BufferSink<'v>(&'v mut Vec<FlowRecord>);

impl FlowSink for BufferSink<'_> {
    fn accept(&mut self, record: &FlowRecord) {
        self.0.push(*record);
    }
}

/// Summary counters from one simulation pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrafficStats {
    /// True flows generated (before sampling).
    pub flows_generated: u64,
    /// Flows exported by the border router.
    pub flows_exported: u64,
    /// Device-days simulated.
    pub device_days: u64,
}

/// The simulator.
pub struct TrafficSimulator<'a> {
    world: &'a World,
    /// Well-known endpoint per `(provider, site)` for tenant-less schemes.
    service_domain: HashMap<(usize, usize), DomainName>,
    /// Per-provider pools of US-site documented v4 servers (secondary-US
    /// contacts).
    us_pools: Vec<Vec<ServerId>>,
    /// Per-provider undocumented (baked-in address) servers.
    hidden_pools: Vec<Vec<ServerId>>,
    /// NetFlow export faults applied at the border router.
    netflow_faults: NetflowFaults,
    fault_seed: u64,
}

impl<'a> TrafficSimulator<'a> {
    /// Simulator whose border router applies a NetFlow export-fault
    /// plan. The faults act strictly after packet sampling, so the
    /// sampler's RNG stream — and every flow that survives — is
    /// identical to the unfaulted simulator's.
    pub fn with_faults(world: &'a World, fault_seed: u64, faults: NetflowFaults) -> Self {
        let mut sim = Self::new(world);
        sim.netflow_faults = faults;
        sim.fault_seed = fault_seed;
        sim
    }

    /// Prepare a simulator for a world.
    pub fn new(world: &'a World) -> Self {
        let mut service_domain = HashMap::new();
        for (pidx, spec) in world.providers.iter().enumerate() {
            match &spec.domain_style {
                DomainStyle::ServiceRegion { services, sld } => {
                    for (sidx, site) in spec.sites.iter().enumerate() {
                        let name = format!("{}.{}.{sld}", services[0], site.code);
                        service_domain
                            .insert((pidx, sidx), name.parse().expect("valid service domain"));
                    }
                }
                DomainStyle::Fixed { names } => {
                    for (sidx, _) in spec.sites.iter().enumerate() {
                        let name = if spec.name == "google" {
                            names[0]
                        } else {
                            names[sidx.min(names.len() - 1)]
                        };
                        service_domain
                            .insert((pidx, sidx), name.parse().expect("valid fixed domain"));
                    }
                }
                _ => {}
            }
        }
        let us_pools = (0..world.providers.len())
            .map(|p| {
                world.site_pools[p]
                    .iter()
                    .enumerate()
                    .filter(|(s, _)| {
                        world.geo.location(world.site_city[p][*s]).continent
                            == Continent::NorthAmerica
                    })
                    .flat_map(|(_, pool)| pool.iter().copied())
                    .collect()
            })
            .collect();
        let hidden_pools = (0..world.providers.len())
            .map(|p| world.site_hidden[p].iter().flatten().copied().collect())
            .collect();
        TrafficSimulator {
            world,
            service_domain,
            us_pools,
            hidden_pools,
            netflow_faults: NetflowFaults::NONE,
            fault_seed: 0,
        }
    }

    /// Simulate a period, pushing exported flows into `sink`.
    pub fn run(&self, period: StudyPeriod, sink: &mut dyn FlowSink) -> TrafficStats {
        let _span = iotmap_obs::span!("world.traffic_simulation");
        let world = self.world;
        let rng = SimRng::new(world.config.seed).fork("traffic");
        let mut router = BorderRouter::with_faults(
            world.config.sampling_rate,
            world.isp.lines.len() as u64 - 1,
            world.config.seed ^ 0x0150_cafe,
            rng.fork("router"),
            self.fault_seed,
            self.netflow_faults.clone(),
        );
        let affected = self.affected_servers(period);

        let mut stats = TrafficStats::default();
        let flow_span = iotmap_obs::span!("netflow.flow_generation");
        for block in world.isp.lines.chunks(BLOCK_LINES) {
            let buffers = self.block_flows(block, period, &affected, &rng);
            for (flows, line_stats) in buffers {
                stats.flows_generated += line_stats.flows_generated;
                stats.device_days += line_stats.device_days;
                for record in &flows {
                    router.process(record, sink);
                }
            }
        }
        drop(flow_span);
        sink.finish();
        stats.flows_exported = router.exported;
        router.flush_metrics();
        iotmap_obs::count!("netflow.flows_generated", stats.flows_generated);
        iotmap_obs::count!("world.device_days", stats.device_days);
        stats
    }

    /// Simulate a period, streaming exported flows through a mergeable
    /// [`FlowFold`] instead of a serial sink. Peak memory is one block of
    /// exported records plus the aggregate state — the full flow set is
    /// never materialized. The fold consumes the exact export sequence of
    /// [`TrafficSimulator::run`] (per-shard partials merge in shard
    /// order), so the result is byte-identical to a serial sink pass at
    /// any thread count.
    pub fn run_fold<F>(&self, period: StudyPeriod, fold: &F) -> (F::Partial, TrafficStats)
    where
        F: FlowFold + Sync,
    {
        self.run_replicated_fold(period, 1, fold)
    }

    /// [`TrafficSimulator::run_fold`] over a subscriber population
    /// replicated `replicas` times — the scale harness for ISP runs far
    /// beyond the world's materialized line count.
    ///
    /// Replica `r` re-derives every line with id `line.id + r * n`
    /// (forking fresh RNG streams, so replicas produce distinct
    /// households, not copies) and the border router anonymizes over the
    /// full `replicas * n` line space. Scanner lines are only simulated
    /// in replica 0: the scanner *population* is a property of the
    /// world's config, not of the scale factor.
    pub fn run_replicated_fold<F>(
        &self,
        period: StudyPeriod,
        replicas: u64,
        fold: &F,
    ) -> (F::Partial, TrafficStats)
    where
        F: FlowFold + Sync,
    {
        assert!(replicas >= 1, "at least one replica");
        let _span = iotmap_obs::span!("world.traffic_simulation");
        let world = self.world;
        let n = world.isp.lines.len() as u64;
        let rng = SimRng::new(world.config.seed).fork("traffic");
        let mut router = BorderRouter::with_faults(
            world.config.sampling_rate,
            replicas * n - 1,
            world.config.seed ^ 0x0150_cafe,
            rng.fork("router"),
            self.fault_seed,
            self.netflow_faults.clone(),
        );
        let affected = self.affected_servers(period);

        let mut stats = TrafficStats::default();
        let mut acc = fold.make();
        let flow_span = iotmap_obs::span!("netflow.flow_generation");
        let mut exported: Vec<FlowRecord> = Vec::new();
        for rep in 0..replicas {
            for block in world.isp.lines.chunks(BLOCK_LINES) {
                let replica_block: Vec<SubscriberLine>;
                let block: &[SubscriberLine] = if rep == 0 {
                    block
                } else {
                    replica_block = block
                        .iter()
                        .map(|l| {
                            let mut l = l.clone();
                            l.id += rep * n;
                            l.scanner = None;
                            l
                        })
                        .collect();
                    &replica_block
                };
                let buffers = self.block_flows(block, period, &affected, &rng);
                exported.clear();
                let mut buffer_sink = BufferSink(&mut exported);
                for (flows, line_stats) in buffers {
                    stats.flows_generated += line_stats.flows_generated;
                    stats.device_days += line_stats.device_days;
                    for record in &flows {
                        router.process(record, &mut buffer_sink);
                    }
                }
                let partial = iotmap_par::shard_fold(
                    &exported,
                    |_| fold.make(),
                    |acc, _i, r| fold.fold(acc, r),
                    |a, b| fold.merge(a, b),
                );
                fold.merge(&mut acc, partial);
            }
        }
        drop(flow_span);
        stats.flows_exported = router.exported;
        router.flush_metrics();
        iotmap_obs::count!("netflow.flows_generated", stats.flows_generated);
        iotmap_obs::count!("world.device_days", stats.device_days);
        (acc, stats)
    }

    /// Outage-affected servers, when the period overlaps the event.
    fn affected_servers(&self, period: StudyPeriod) -> HashSet<ServerId> {
        if period.overlaps(&self.world.events.outage.window) {
            self.world.outage_affected_servers()
        } else {
            HashSet::new()
        }
    }

    /// Generate one block's true flows in parallel, one buffer per line.
    ///
    /// Flow generation is pure per line (every line forks its RNG by id),
    /// so lines shard freely; only the border router is a shared,
    /// order-sensitive stage (its sampler RNG advances per record). Each
    /// block's buffers are then routed serially in line order — the
    /// router consumes the exact record sequence of a serial loop, so
    /// exports stay byte-identical at any thread count while buffering
    /// stays bounded.
    fn block_flows(
        &self,
        block: &[SubscriberLine],
        period: StudyPeriod,
        affected: &HashSet<ServerId>,
        rng: &SimRng,
    ) -> Vec<(Vec<FlowRecord>, TrafficStats)> {
        iotmap_par::shard_map(block, |_i, line| {
            let mut line_rng = rng.fork_idx(line.id);
            let mut flows = Vec::new();
            let mut line_stats = TrafficStats::default();
            if let Some(kind) = line.scanner {
                self.run_scanner(
                    line,
                    kind,
                    period,
                    &mut line_rng,
                    &mut flows,
                    &mut line_stats,
                );
            }
            for (di, device) in line.devices.iter().enumerate() {
                let mut dev_rng = line_rng.fork_idx(di as u64 + 1);
                self.run_device(
                    line,
                    device,
                    period,
                    affected,
                    &mut dev_rng,
                    &mut flows,
                    &mut line_stats,
                );
            }
            (flows, line_stats)
        })
    }

    /// One device over the whole period, appending its true flows to `out`.
    #[allow(clippy::too_many_arguments)]
    fn run_device(
        &self,
        line: &SubscriberLine,
        device: &Device,
        period: StudyPeriod,
        affected: &HashSet<ServerId>,
        rng: &mut SimRng,
        out: &mut Vec<FlowRecord>,
        stats: &mut TrafficStats,
    ) {
        let world = self.world;
        let spec = &world.providers[device.provider];
        let profile = &spec.profile;
        let ev = &world.events.outage;
        // Whether this device goes silent during an outage (rather than
        // retrying) is a stable property of its firmware.
        let silent_in_outage = rng.chance(ev.silence_prob);
        // Devices speak one primary protocol (a camera does not alternate
        // between CoAP and AMQP): pick it once, with occasional secondary
        // channels. This is what concentrates §5.6's heavy AMQP volumes on
        // a small line population instead of smearing them over everyone.
        let affinity_weights: Vec<f64> = profile.ports.iter().map(|p| p.weight).collect();
        let primary_port = profile.ports[rng.choose_weighted(&affinity_weights)].port;

        for date in period.days() {
            stats.device_days += 1;
            // Devices are not all active every day.
            if !rng.chance(0.75) {
                continue;
            }
            let day = date.epoch_days();
            let v4_servers = self.servers_for_device(line, device, date, RrType::A);
            let v6_servers = if device.uses_v6 && line.v6_capable {
                self.servers_for_device(line, device, date, RrType::Aaaa)
            } else {
                Vec::new()
            };
            if v4_servers.is_empty() && v6_servers.is_empty() {
                continue;
            }
            // Long-lived MQTT connections: a device sticks to one gateway
            // per resolution epoch (per family) rather than spraying the
            // answer set.
            let epoch = (day - day.rem_euclid(7)) as usize;
            let v4_today: Vec<ServerId> = if v4_servers.is_empty() {
                Vec::new()
            } else {
                vec![v4_servers[(line.id as usize ^ epoch) % v4_servers.len()]]
            };
            let v6_today: Vec<ServerId> = if v6_servers.is_empty() {
                Vec::new()
            } else {
                vec![v6_servers[(line.id as usize ^ epoch) % v6_servers.len()]]
            };

            // Daily volume budget.
            let heavy = device.heavy;
            let dn_median = if heavy {
                profile
                    .heavy
                    .expect("heavy device implies heavy tail")
                    .dn_bytes_median
            } else {
                profile.dn_bytes_median * device.volume_factor
            };
            let dn_total = dist::log_normal_median(rng, dn_median, profile.sigma);
            let up_total = dn_total / profile.down_up_ratio * rng.f64_range(0.8, 1.25);

            let sessions = dist::poisson(rng, profile.sessions_per_day).max(1);
            let port_weights: Vec<f64> = profile.ports.iter().map(|p| p.weight).collect();
            let hour_weights: Vec<f64> = (0..24).map(|h| profile.pattern.hour_weight(h)).collect();

            for s in 0..sessions {
                let hour = rng.choose_weighted(&hour_weights) as u64;
                let time = date.midnight()
                    + SimDuration::hours(hour)
                    + SimDuration::seconds(rng.gen_below(3600));

                // Port: heavy devices put most bytes on the heavy port;
                // everyone else mostly sticks to their primary protocol.
                let port = if heavy && rng.chance(0.8) {
                    profile.heavy.expect("heavy tail").port
                } else if rng.chance(0.92) {
                    primary_port
                } else {
                    profile.ports[rng.choose_weighted(&port_weights)].port
                };

                // Server: occasionally the weekly US sync or a baked-in
                // undocumented gateway; normally today's DNS answer.
                let server_id = self.pick_server(line, device, day, s, &v4_today, &v6_today, rng);
                let Some(server_id) = server_id else { continue };
                let server = &world.servers[server_id];

                let mut dn = dn_total / sessions as f64 * rng.f64_range(0.4, 1.6);
                let mut up = up_total / sessions as f64 * rng.f64_range(0.4, 1.6);

                // Outage dynamics (§6.1).
                match ev.session_scaling(
                    time,
                    affected.contains(&server_id),
                    self.same_cloud_as_outage(server.provider, server.site),
                    silent_in_outage,
                ) {
                    None => continue,
                    Some((dn_mul, up_mul)) => {
                        dn *= dn_mul;
                        up *= up_mul;
                    }
                }

                self.emit_pair(line, server.ip, port, time, dn, up, out, stats);
            }
        }
    }

    /// Pick the target server for one session.
    #[allow(clippy::too_many_arguments)]
    fn pick_server(
        &self,
        line: &SubscriberLine,
        device: &Device,
        day: i64,
        session: u64,
        v4: &[ServerId],
        v6: &[ServerId],
        rng: &mut SimRng,
    ) -> Option<ServerId> {
        let world = self.world;
        // Weekly secondary sync with a US aggregation endpoint.
        if device.secondary_us
            && session == 0
            && (day as u64 + line.id).is_multiple_of(7)
            && !self.us_pools[device.provider].is_empty()
        {
            let pool = &self.us_pools[device.provider];
            let pick = pool[((line.id ^ day as u64) % pool.len() as u64) as usize];
            if world.servers[pick].alive_on(day) {
                return Some(pick);
            }
        }
        // Baked-in undocumented gateways (Microsoft): only a rare firmware
        // line carries hardcoded addresses, so just a handful of hidden
        // gateways ever see ISP traffic — the paper's "missed 4 IPs".
        if !self.hidden_pools[device.provider].is_empty()
            && line.id.is_multiple_of(977)
            && rng.chance(0.3)
        {
            let pool = &self.hidden_pools[device.provider];
            let pick = pool[(line.id % pool.len() as u64) as usize];
            if world.servers[pick].alive_on(day) {
                return Some(pick);
            }
        }
        // IPv6 when available, ~25% of sessions.
        if !v6.is_empty() && rng.chance(0.25) {
            return Some(*rng.choose(v6));
        }
        if v4.is_empty() {
            return None;
        }
        Some(*rng.choose(v4))
    }

    /// Today's DNS answer for a device, mapped to live server ids.
    fn servers_for_device(
        &self,
        line: &SubscriberLine,
        device: &Device,
        date: Date,
        rrtype: RrType,
    ) -> Vec<ServerId> {
        let world = self.world;
        let domain = self.device_domain(device);
        let Some(domain) = domain else {
            return Vec::new();
        };
        // DNS caching / connection reuse: devices hold long-lived MQTT
        // sessions and re-resolve roughly weekly — this keeps a
        // household's weekly contact set small (the paper argues 10
        // backend IPs per line is plausible, not typical).
        let day = date.epoch_days();
        let cached_day = day - day.rem_euclid(7);
        let ctx = ResolutionContext {
            client_continent: Continent::Europe,
            time: Date::from_epoch_days(cached_day).midnight() + SimDuration::hours(6),
            resolver_id: line.id % 97,
        };
        let mut out: Vec<ServerId> = resolve(&world.zones, domain, rrtype, &ctx)
            .into_iter()
            .filter_map(|ip| world.server_by_ip.get(&ip).copied())
            .filter(|&sid| world.servers[sid].alive_on(day))
            .collect();
        if out.is_empty() && rrtype == RrType::A {
            // Stale DNS / dead pool: fall back to any live documented
            // gateway at the device's home site.
            out = world.site_pools[device.provider][device.home_site]
                .iter()
                .copied()
                .filter(|&sid| world.servers[sid].alive_on(day))
                .take(3)
                .collect();
        }
        out
    }

    /// The FQDN a device connects to.
    fn device_domain(&self, device: &Device) -> Option<&DomainName> {
        let world = self.world;
        if device.tenant != u32::MAX {
            return world.tenants[device.provider]
                .get(device.tenant as usize)
                .map(|t| &t.domain);
        }
        self.service_domain
            .get(&(device.provider, device.home_site))
    }

    /// Is `(provider, site)` hosted in the outage-struck cloud (any
    /// region)? Used for the cross-region spillover dip.
    fn same_cloud_as_outage(&self, provider: usize, site: usize) -> bool {
        use crate::providers::SiteHosting;
        matches!(
            &self.world.providers[provider].sites[site].hosting,
            SiteHosting::Cloud { cloud, .. } if *cloud == self.world.events.outage.cloud
        )
    }

    /// Scanner lines: probe flows to broad swaths of the address space.
    #[allow(clippy::too_many_arguments)]
    fn run_scanner(
        &self,
        line: &SubscriberLine,
        kind: ScannerKind,
        period: StudyPeriod,
        rng: &mut SimRng,
        out: &mut Vec<FlowRecord>,
        stats: &mut TrafficStats,
    ) {
        let world = self.world;
        for date in period.days() {
            let day = date.epoch_days();
            for server in &world.servers {
                if !server.ip.is_ipv4() || !server.alive_on(day) {
                    continue;
                }
                let probe = match kind {
                    ScannerKind::Full => true,
                    ScannerKind::Partial(f) => {
                        // A stable pseudo-random subset of the space.
                        let h = (line.id ^ (server.id as u64).wrapping_mul(0x9E37_79B9))
                            .wrapping_mul(0x2545_F491_4F6C_DD1D);
                        (h >> 40) as f64 / (1u64 << 24) as f64 % 1.0 < f
                    }
                };
                if !probe {
                    continue;
                }
                let time = date.midnight() + SimDuration::seconds(rng.gen_below(86_400));
                let port = *rng.choose(&server.ports);
                // A probe: one small upstream packet, sometimes answered.
                let up = FlowRecord {
                    time,
                    line: LineId(line.id),
                    remote: server.ip,
                    port,
                    direction: Direction::Upstream,
                    bytes: 60,
                    packets: 1,
                };
                stats.flows_generated += 1;
                if rng.chance(0.7) {
                    let dn = FlowRecord {
                        direction: Direction::Downstream,
                        bytes: 60,
                        ..up
                    };
                    stats.flows_generated += 1;
                    out.push(up);
                    out.push(dn);
                } else {
                    out.push(up);
                }
            }
        }
    }

    /// Emit the down/up record pair for one session.
    #[allow(clippy::too_many_arguments)]
    fn emit_pair(
        &self,
        line: &SubscriberLine,
        remote: IpAddr,
        port: iotmap_nettypes::PortProto,
        time: iotmap_nettypes::SimTime,
        dn_bytes: f64,
        up_bytes: f64,
        out: &mut Vec<FlowRecord>,
        stats: &mut TrafficStats,
    ) {
        let dn_bytes = dn_bytes.max(200.0) as u64;
        let up_bytes = up_bytes.max(200.0) as u64;
        let dn = FlowRecord {
            time,
            line: LineId(line.id),
            remote,
            port,
            direction: Direction::Downstream,
            bytes: dn_bytes,
            packets: dn_bytes / 1200 + 1,
        };
        let up = FlowRecord {
            direction: Direction::Upstream,
            bytes: up_bytes,
            packets: up_bytes / 1200 + 1,
            ..dn
        };
        stats.flows_generated += 2;
        out.push(dn);
        out.push(up);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use iotmap_netflow::StoringSink;

    fn world() -> World {
        World::generate(&WorldConfig::small(42))
    }

    #[test]
    fn week_of_traffic_has_sane_shape() {
        let w = world();
        let sim = TrafficSimulator::new(&w);
        let mut sink = StoringSink::new();
        let stats = sim.run(w.config.study_period, &mut sink);
        assert!(stats.flows_generated > 10_000, "{stats:?}");
        assert_eq!(stats.flows_exported as usize, sink.records.len());

        // Distinct active lines ≈ 15% of the population (2.32M of 15M in
        // the paper).
        let mut lines: HashSet<LineId> = HashSet::new();
        for r in &sink.records {
            lines.insert(r.line);
        }
        let frac = lines.len() as f64 / w.isp.lines.len() as f64;
        assert!((0.10..0.25).contains(&frac), "active line fraction {frac}");

        // All remotes are known servers.
        for r in sink.records.iter().take(2000) {
            assert!(w.server_by_ip.contains_key(&r.remote));
        }
    }

    #[test]
    fn traffic_is_deterministic() {
        let w = world();
        let sim = TrafficSimulator::new(&w);
        let run = || {
            let mut sink = StoringSink::new();
            sim.run(w.config.study_period, &mut sink);
            sink.records.len()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn downstream_and_upstream_both_present() {
        let w = world();
        let sim = TrafficSimulator::new(&w);
        let mut sink = StoringSink::new();
        sim.run(w.config.study_period, &mut sink);
        let dn: u64 = sink
            .records
            .iter()
            .filter(|r| r.direction == Direction::Downstream)
            .map(|r| r.bytes)
            .sum();
        let up: u64 = sink
            .records
            .iter()
            .filter(|r| r.direction == Direction::Upstream)
            .map(|r| r.bytes)
            .sum();
        assert!(dn > 0 && up > 0);
        let ratio = dn as f64 / up as f64;
        assert!((0.3..5.0).contains(&ratio), "global dn/up {ratio}");
    }

    #[test]
    fn outage_reduces_us_east_downstream() {
        let w = World::generate(&WorldConfig {
            study_period: iotmap_nettypes::StudyPeriod::outage_week(),
            ..WorldConfig::small(42)
        });
        let sim = TrafficSimulator::new(&w);
        let mut sink = StoringSink::new();
        sim.run(w.config.study_period, &mut sink);
        let affected = w.outage_affected_servers();
        let affected_ips: HashSet<IpAddr> = affected.iter().map(|&sid| w.servers[sid].ip).collect();
        let window = w.events.outage.window;
        // Downstream bytes per hour to affected servers, inside vs outside
        // the outage window (same hours of other days).
        let mut in_window = 0.0f64;
        let mut in_hours = 0u32;
        let mut out_window = 0.0f64;
        let mut out_hours = 0u32;
        let mut by_hour: HashMap<u64, u64> = HashMap::new();
        for r in &sink.records {
            if r.direction == Direction::Downstream && affected_ips.contains(&r.remote) {
                *by_hour.entry(r.time.epoch_hours()).or_default() += r.bytes;
            }
        }
        for h in w.config.study_period.hours() {
            let hour_total: u64 = by_hour.get(&h.epoch_hours()).copied().unwrap_or(0);
            let hod = h.hour_of_day();
            // Compare like-for-like hours of day (15:30–22:30 UTC).
            if !(15..=22).contains(&hod) {
                continue;
            }
            if window.contains(h) {
                in_window += hour_total as f64;
                in_hours += 1;
            } else {
                out_window += hour_total as f64;
                out_hours += 1;
            }
        }
        assert!(in_hours > 0 && out_hours > 0);
        let in_rate = in_window / in_hours as f64;
        let out_rate = out_window / out_hours as f64;
        assert!(
            in_rate < out_rate * 0.6,
            "outage should cut downstream: {in_rate} vs {out_rate}"
        );
    }

    #[test]
    fn scanners_touch_far_more_servers_than_households() {
        let w = world();
        let sim = TrafficSimulator::new(&w);
        let mut sink = StoringSink::new();
        sim.run(w.config.study_period, &mut sink);
        let mut per_line: HashMap<LineId, HashSet<IpAddr>> = HashMap::new();
        for r in &sink.records {
            per_line.entry(r.line).or_default().insert(r.remote);
        }
        let max_contact = per_line.values().map(|s| s.len()).max().unwrap_or(0);
        let median = {
            let mut v: Vec<usize> = per_line.values().map(|s| s.len()).collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(median <= 12, "median household contact set {median}");
        if w.isp.scanner_count() > 0 {
            assert!(
                max_contact > 20 * median.max(1),
                "max {max_contact} median {median}"
            );
        }
    }

    #[test]
    fn v6_capable_devices_generate_v6_flows() {
        let w = world();
        let sim = TrafficSimulator::new(&w);
        let mut sink = StoringSink::new();
        sim.run(w.config.study_period, &mut sink);
        let v6_flows = sink.records.iter().filter(|r| r.remote.is_ipv6()).count();
        assert!(v6_flows > 0, "dual-stack devices must produce AAAA traffic");
        // …but v6 remains a small minority (§5.2: 202k v6 vs 2.32M v4
        // daily lines).
        let frac = v6_flows as f64 / sink.records.len() as f64;
        assert!(frac < 0.2, "v6 flow share {frac}");
    }

    #[test]
    fn secondary_us_devices_reach_us_servers() {
        let w = world();
        // Find a line hosting an EU-homed device with the weekly-US flag.
        let has_secondary = w
            .isp
            .lines
            .iter()
            .any(|l| l.devices.iter().any(|d| d.secondary_us));
        assert!(
            has_secondary,
            "population should contain secondary-US devices"
        );
        let sim = TrafficSimulator::new(&w);
        let mut sink = StoringSink::new();
        sim.run(w.config.study_period, &mut sink);
        // At least some flows must land on North-American servers.
        let us_flows = sink
            .records
            .iter()
            .filter(|r| {
                w.server_by_ip.get(&r.remote).is_some_and(|&sid| {
                    let s = &w.servers[sid];
                    w.geo.location(w.site_city[s.provider][s.site]).continent
                        == iotmap_nettypes::Continent::NorthAmerica
                })
            })
            .count();
        assert!(us_flows > 0);
    }

    #[test]
    fn fold_run_matches_sink_run() {
        let w = world();
        let sim = TrafficSimulator::new(&w);
        let mut sink = iotmap_netflow::CountingSink::default();
        let sink_stats = sim.run(w.config.study_period, &mut sink);
        let (totals, fold_stats) =
            sim.run_fold(w.config.study_period, &iotmap_netflow::CountingFold);
        assert_eq!(totals.records, sink.records);
        assert_eq!(fold_stats.flows_generated, sink_stats.flows_generated);
        assert_eq!(fold_stats.flows_exported, sink_stats.flows_exported);
        assert_eq!(fold_stats.device_days, sink_stats.device_days);
    }

    #[test]
    fn fold_run_is_thread_invariant() {
        let w = world();
        let sim = TrafficSimulator::new(&w);
        let serial = iotmap_par::with_threads(1, || {
            sim.run_fold(w.config.study_period, &iotmap_netflow::CountingFold)
        });
        let sharded = iotmap_par::with_threads(4, || {
            sim.run_fold(w.config.study_period, &iotmap_netflow::CountingFold)
        });
        assert_eq!(serial.0, sharded.0);
        assert_eq!(serial.1.flows_exported, sharded.1.flows_exported);
    }

    #[test]
    fn replicated_fold_scales_the_population() {
        let w = world();
        let sim = TrafficSimulator::new(&w);
        let (one, one_stats) =
            sim.run_replicated_fold(w.config.study_period, 1, &iotmap_netflow::CountingFold);
        let (three, three_stats) =
            sim.run_replicated_fold(w.config.study_period, 3, &iotmap_netflow::CountingFold);
        // Replicas 1..3 carry no scanner lines, so growth is roughly — not
        // exactly — linear in the household population.
        assert!(three.records > one.records * 2, "{three:?} vs {one:?}");
        assert!(three_stats.device_days > one_stats.device_days * 2);
        // Replica 0 is the unreplicated population: byte-identical stats.
        assert_eq!(one_stats.flows_exported, {
            let (_, s) = sim.run_fold(w.config.study_period, &iotmap_netflow::CountingFold);
            s.flows_exported
        });
    }

    #[test]
    fn heavy_bosch_devices_move_big_volumes_on_5671() {
        let w = world();
        let sim = TrafficSimulator::new(&w);
        let mut sink = StoringSink::new();
        sim.run(w.config.study_period, &mut sink);
        let amqp_bytes: u64 = sink
            .records
            .iter()
            .filter(|r| r.port.port == 5671 && r.direction == Direction::Downstream)
            .map(|r| r.bytes)
            .sum();
        let total: u64 = sink
            .records
            .iter()
            .filter(|r| r.direction == Direction::Downstream)
            .map(|r| r.bytes)
            .sum();
        assert!(amqp_bytes > 0);
        // The heavy AMQP class is a visible share of total downstream.
        assert!(
            amqp_bytes as f64 > total as f64 * 0.02,
            "amqp {amqp_bytes} of {total}"
        );
    }
}
