//! Gateway servers — the ground-truth objects the whole study is about.

use iotmap_nettypes::{Asn, PortProto};
use std::net::IpAddr;

/// Index into [`crate::World::servers`].
pub type ServerId = usize;

/// One Internet-facing IoT gateway.
#[derive(Debug, Clone)]
pub struct Server {
    pub id: ServerId,
    pub ip: IpAddr,
    /// Index into the provider catalog.
    pub provider: usize,
    /// Index into the provider's site list.
    pub site: usize,
    /// The AS announcing this address.
    pub asn: Asn,
    /// Open service ports.
    pub ports: Vec<PortProto>,
    /// Epoch-day bounds of this server's life `[born, died)` — cloud churn
    /// (Fig. 4). Stable servers span the whole simulation range.
    pub born_day: i64,
    pub died_day: i64,
    /// Appears in DNS answers / documentation. Undocumented servers are
    /// reached via addresses baked into device firmware (the §3.4
    /// Microsoft "missed IPs").
    pub documented: bool,
    /// Exposes an identifying certificate to anonymous scanners (a plain
    /// HTTPS endpoint). When false, the server is certificate-invisible:
    /// SNI-gated, client-cert-gated, or plaintext-only.
    pub cert_exposed: bool,
    /// Also serves non-IoT traffic/domains (Google's shared HTTPS set,
    /// Akamai edges).
    pub shared: bool,
    /// Part of an anycast front.
    pub anycast: bool,
}

impl Server {
    /// Is the server alive on the given epoch day?
    pub fn alive_on(&self, epoch_day: i64) -> bool {
        (self.born_day..self.died_day).contains(&epoch_day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liveness_window() {
        let s = Server {
            id: 0,
            ip: "192.0.2.1".parse().unwrap(),
            provider: 0,
            site: 0,
            asn: Asn(1),
            ports: vec![],
            born_day: 100,
            died_day: 105,
            documented: true,
            cert_exposed: true,
            shared: false,
            anycast: false,
        };
        assert!(!s.alive_on(99));
        assert!(s.alive_on(100));
        assert!(s.alive_on(104));
        assert!(!s.alive_on(105));
    }
}
