//! The scanners' view of the world: [`iotmap_scan::ScanView`] implemented
//! over ground truth, date-aware (churned servers appear and disappear),
//! with noisy geolocation.

use crate::build::World;
use crate::providers::{DomainStyle, ProviderSpec, SiteHosting};
use crate::server::Server;
use iotmap_nettypes::{Date, Location, PortProto, SimRng, StudyPeriod, Transport};
use iotmap_scan::ScanView;
use iotmap_tls::{Certificate, ClientAuth, SanName, SniPolicy, TlsEndpoint};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::sync::Arc;

/// A dated view of the world, as scanners see it.
pub struct WorldScanView<'a> {
    world: &'a World,
    date: Date,
}

/// Derived lookups the scan views use on every probe, built once per
/// world: the per-(provider, site) certificate pair (a site's servers all
/// present the same certificates, so the sweep shares one `Arc` instead
/// of re-deriving the SAN list per probe) and an index over background
/// hosts (previously a linear scan per background lookup).
#[derive(Debug, Clone)]
pub(crate) struct ViewCache {
    /// `[provider][site]` → (IoT certificate, generic front certificate).
    site_certs: Vec<Vec<(Arc<Certificate>, Arc<Certificate>)>>,
    /// Background host ip → index into `world.background`.
    background_by_ip: HashMap<Ipv4Addr, usize>,
    /// Per-background-host TLS certificate, same indexing.
    background_certs: Vec<Arc<Certificate>>,
}

impl World {
    /// The scanner-visible Internet on a given date.
    pub fn view_on(&self, date: Date) -> WorldScanView<'_> {
        WorldScanView { world: self, date }
    }

    pub(crate) fn view_cache(&self) -> &ViewCache {
        self.view_cache.get_or_init(|| {
            let validity = certificate_validity();
            let site_certs = self
                .providers
                .iter()
                .map(|spec| {
                    (0..spec.sites.len())
                        .map(|site| {
                            let iot = Certificate::new(
                                spec.display,
                                self.cert_sans(spec, site),
                                validity,
                            );
                            let generic = Certificate::new(
                                "load-balancer",
                                vec![SanName::parse(&generic_front_name(spec, site))
                                    .expect("valid generic SAN")],
                                validity,
                            );
                            (Arc::new(iot), Arc::new(generic))
                        })
                        .collect()
                })
                .collect();
            let background_by_ip = self
                .background
                .iter()
                .enumerate()
                .map(|(i, b)| (b.ip, i))
                .collect();
            let background_certs = self
                .background
                .iter()
                .map(|b| {
                    let san = SanName::parse(&format!("*.{}", b.domain.second_level()))
                        .expect("valid background SAN");
                    Arc::new(Certificate::new("background", vec![san], validity))
                })
                .collect();
            ViewCache {
                site_certs,
                background_by_ip,
                background_certs,
            }
        })
    }

    /// Index of the background host owning `ip`, if any.
    pub(crate) fn background_index(&self, ip: Ipv4Addr) -> Option<usize> {
        self.view_cache().background_by_ip.get(&ip).copied()
    }

    /// The SAN names a provider's gateway certificate carries at a site.
    pub fn cert_sans(&self, spec: &ProviderSpec, site: usize) -> Vec<SanName> {
        let site_spec = &spec.sites[site];
        let names: Vec<String> = match &spec.domain_style {
            DomainStyle::TenantServiceRegion { service, sld } => {
                vec![format!("*.{service}.{}.{sld}", site_spec.code)]
            }
            DomainStyle::TenantSld { sld } => vec![format!("*.{sld}")],
            DomainStyle::TenantRegion { sld } => {
                let code = if spec.name == "siemens" {
                    ["eu1", "us1", "cn1", "eu2"][site.min(3)].to_string()
                } else {
                    site_spec.code.clone()
                };
                vec![format!("*.{code}.{sld}")]
            }
            DomainStyle::ServiceRegion { services, sld } => services
                .iter()
                .map(|svc| format!("{svc}.{}.{sld}", site_spec.code))
                .collect(),
            DomainStyle::Fixed { names } => names.iter().map(|n| n.to_string()).collect(),
        };
        names
            .iter()
            .map(|n| SanName::parse(n).expect("valid SAN"))
            .collect()
    }

    /// The TLS endpoint configuration of one server's TLS port.
    fn endpoint_for(&self, server: &Server) -> TlsEndpoint {
        let (iot_cert, generic_cert) = &self.view_cache().site_certs[server.provider][server.site];
        if server.cert_exposed && server.documented {
            TlsEndpoint::plain(iot_cert.clone())
        } else {
            // SNI-gated (or simply default-cert-generic) front: anonymous
            // scanners harvest only the generic certificate; devices that
            // present the right server name reach the IoT certificate.
            TlsEndpoint::sni_gated(iot_cert.clone(), generic_cert.clone())
        }
    }
}

/// Certificates in the world are valid over the whole simulated range.
pub(crate) fn certificate_validity() -> StudyPeriod {
    StudyPeriod::from_dates(Date::new(2021, 6, 1), Date::new(2022, 9, 1))
}

/// The uninformative certificate a hidden front presents.
fn generic_front_name(spec: &ProviderSpec, site: usize) -> String {
    match &spec.sites[site].hosting {
        SiteHosting::Cloud { cloud, region } => format!("*.{region}.{cloud}-elb.example"),
        SiteHosting::Own { .. } => {
            if spec.name == "google" {
                "*.google-fe.example".to_string()
            } else {
                format!("*.fe.{}.example", spec.name)
            }
        }
    }
}

impl WorldScanView<'_> {
    /// Resolve `addr` to a server, honouring scenario migrations: from the
    /// move day the old address is dark and the new one answers.
    fn server_at(&self, addr: IpAddr) -> Option<crate::server::ServerId> {
        let tl = &self.world.timeline;
        let day = self.date.epoch_days();
        if let Some(&sid) = self.world.server_by_ip.get(&addr) {
            return match tl.migrations.get(&sid) {
                Some(m) if day >= m.day => None,
                _ => Some(sid),
            };
        }
        let &sid = tl.migrated_by_ip.get(&addr)?;
        (day >= tl.migrations[&sid].day).then_some(sid)
    }
}

impl ScanView for WorldScanView<'_> {
    fn ipv4_hosts(&self) -> Vec<(Ipv4Addr, Vec<PortProto>)> {
        let day = self.date.epoch_days();
        let tl = &self.world.timeline;
        let mut hosts = Vec::new();
        for s in &self.world.servers {
            if let IpAddr::V4(a) = s.ip {
                if s.alive_on(day) {
                    let addr = match tl.migrations.get(&s.id) {
                        Some(m) if day >= m.day => m.new_ip,
                        _ => a,
                    };
                    hosts.push((addr, s.ports.clone()));
                }
            }
        }
        for b in &self.world.background {
            hosts.push((b.ip, b.ports.clone()));
        }
        hosts
    }

    fn ipv6_ports(&self, addr: Ipv6Addr) -> Vec<PortProto> {
        let day = self.date.epoch_days();
        match self.world.server_by_ip.get(&IpAddr::V6(addr)) {
            Some(&sid) => {
                let s = &self.world.servers[sid];
                if s.alive_on(day) {
                    s.ports.clone()
                } else {
                    Vec::new()
                }
            }
            None => Vec::new(),
        }
    }

    fn tls_endpoint(&self, addr: IpAddr, port: PortProto) -> Option<TlsEndpoint> {
        if port.transport != Transport::Tcp || is_plaintext_port(port.port) {
            return None;
        }
        if let Some(sid) = self.server_at(addr) {
            let server = &self.world.servers[sid];
            if !server.alive_on(self.date.epoch_days()) || !server.ports.contains(&port) {
                return None;
            }
            let spec = &self.world.providers[server.provider];
            let mut ep = self.world.endpoint_for(server);
            let tl = &self.world.timeline;
            let day = self.date.epoch_days();
            if let Some(flip) = tl.flips.get(&server.provider) {
                if day >= flip.day {
                    let (iot, generic) =
                        &self.world.view_cache().site_certs[server.provider][server.site];
                    ep = if flip.into_fronting {
                        TlsEndpoint::sni_gated(iot.clone(), generic.clone())
                    } else {
                        TlsEndpoint::plain(iot.clone())
                    };
                }
            }
            if let Some(storm) = tl.storm_certs.get(&sid) {
                if day >= storm.day {
                    // Swap the IoT certificate in place; the SNI policy
                    // (and its generic fallback) is unchanged.
                    ep.certificate = storm.cert.clone();
                }
            }
            if spec.client_cert_ports.contains(&port.port) {
                ep.client_auth = ClientAuth::RequireClientCert;
                // Mutual-TLS MQTT endpoints abort before the certificate.
                ep.sni = SniPolicy::Ignore;
            }
            return Some(ep);
        }
        // Background hosts: boring certificates for their own domains.
        if let IpAddr::V4(v4) = addr {
            if let Some(i) = self.world.background_index(v4) {
                let b = &self.world.background[i];
                if b.ports.contains(&port) && port.port != 80 {
                    let cert = self.world.view_cache().background_certs[i].clone();
                    return Some(TlsEndpoint::plain(cert));
                }
            }
        }
        None
    }

    fn geolocate(&self, addr: IpAddr) -> Option<Location> {
        let world = self.world;
        // Deterministic per-IP noise: the same IP always geolocates the
        // same way in the scanner's database.
        let mut rng = SimRng::new(world.geo_noise_seed ^ ip_hash(addr));
        if let Some(&sid) = world.timeline.migrated_by_ip.get(&addr) {
            let city = world.timeline.migrations[&sid].to_city;
            return Some(
                world
                    .geo
                    .noisy_location(city, world.config.geo_error_rate, &mut rng),
            );
        }
        if let Some(&sid) = world.server_by_ip.get(&addr) {
            let s = &world.servers[sid];
            let city = world.site_city[s.provider][s.site];
            return Some(
                world
                    .geo
                    .noisy_location(city, world.config.geo_error_rate, &mut rng),
            );
        }
        if let IpAddr::V4(v4) = addr {
            if let Some(i) = world.background_index(v4) {
                return Some(world.geo.noisy_location(
                    world.background[i].city,
                    world.config.geo_error_rate,
                    &mut rng,
                ));
            }
        }
        None
    }
}

/// Ports that never speak TLS in this world.
fn is_plaintext_port(port: u16) -> bool {
    matches!(port, 80 | 1883 | 1884 | 9123 | 9124 | 61616)
}

fn ip_hash(addr: IpAddr) -> u64 {
    match addr {
        IpAddr::V4(a) => u32::from(a) as u64,
        IpAddr::V6(a) => {
            let v = u128::from(a);
            (v as u64) ^ ((v >> 64) as u64)
        }
    }
}

/// Latency probing for looking glasses: geometry plus measurement noise.
pub struct WorldLatencyProber<'a> {
    pub world: &'a World,
}

/// A `&World` is itself a latency prober (delegating to
/// [`WorldLatencyProber`]), so artifact holders can lend one out without
/// keeping a wrapper alive alongside the world it borrows.
impl iotmap_scan::LatencyProber for World {
    fn rtt_ms(&self, site: &iotmap_scan::LookingGlassSite, target: IpAddr) -> Option<f64> {
        iotmap_scan::LatencyProber::rtt_ms(&WorldLatencyProber { world: self }, site, target)
    }
}

impl iotmap_scan::LatencyProber for WorldLatencyProber<'_> {
    fn rtt_ms(&self, site: &iotmap_scan::LookingGlassSite, target: IpAddr) -> Option<f64> {
        let world = self.world;
        let loc = if let Some(&sid) = world.server_by_ip.get(&target) {
            let s = &world.servers[sid];
            world
                .geo
                .location(world.site_city[s.provider][s.site])
                .clone()
        } else if let IpAddr::V4(v4) = target {
            let i = world.background_index(v4)?;
            world.geo.location(world.background[i].city).clone()
        } else {
            return None;
        };
        let km = site.location.distance_km(&loc);
        let base = iotmap_nettypes::geo::rtt_ms_for_distance(km);
        // Deterministic queueing/path noise of up to 20%.
        let mut rng = SimRng::new(world.geo_noise_seed ^ ip_hash(target) ^ 0xA5A5);
        Some(base * rng.f64_range(1.0, 1.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use iotmap_scan::{CensysService, LatencyProber};
    use iotmap_tls::{handshake, ClientHello};

    fn world() -> World {
        World::generate(&WorldConfig::small(42))
    }

    #[test]
    fn censys_sweep_finds_microsoft_but_not_amazon_mqtt() {
        let w = world();
        let snap = CensysService::new()
            .daily_sweep(&w.view_on(Date::new(2022, 2, 28)), Date::new(2022, 2, 28));
        assert!(!snap.records.is_empty());
        let azure = iotmap_dregex::query::CensysNameQuery::new("*.azure-devices.net").unwrap();
        let found_ms = snap.search_names(&azure, StudyPeriod::main_week()).count();
        let m = w.provider_index("microsoft");
        let ms_total = w
            .servers
            .iter()
            .filter(|s| s.provider == m && s.ip.is_ipv4() && s.documented)
            .count();
        // Fig. 3: Censys alone finds essentially all documented Microsoft
        // IPs (each IP may carry records on several ports).
        let distinct: std::collections::HashSet<_> = snap
            .search_names(&azure, StudyPeriod::main_week())
            .map(|r| r.ip)
            .collect();
        assert!(found_ms > 0);
        assert!(
            distinct.len() as f64 >= ms_total as f64 * 0.95,
            "{} vs {}",
            distinct.len(),
            ms_total
        );
    }

    #[test]
    fn google_mqtt_ips_hidden_from_certificate_scans() {
        let w = world();
        let snap = CensysService::new()
            .daily_sweep(&w.view_on(Date::new(2022, 2, 28)), Date::new(2022, 2, 28));
        let q = iotmap_dregex::query::CensysNameQuery::new("mqtt.googleapis.com").unwrap();
        let found: std::collections::HashSet<_> = snap
            .search_names(&q, StudyPeriod::main_week())
            .map(|r| r.ip)
            .collect();
        let g = w.provider_index("google");
        let total = w
            .servers
            .iter()
            .filter(|s| s.provider == g && !s.shared && s.ip.is_ipv4())
            .count();
        assert!(
            (found.len() as f64) < total as f64 * 0.10,
            "SNI should hide Google: {} of {}",
            found.len(),
            total
        );
    }

    #[test]
    fn devices_with_sni_reach_google_cert() {
        let w = world();
        let g = w.provider_index("google");
        let server = w
            .servers
            .iter()
            .find(|s| s.provider == g && !s.shared && s.ip.is_ipv4() && !s.cert_exposed)
            .unwrap();
        let view = w.view_on(Date::new(2022, 2, 28));
        let ep = view.tls_endpoint(server.ip, PortProto::tcp(8883)).unwrap();
        let hello = ClientHello::with_sni("mqtt.googleapis.com".parse().unwrap());
        let out = handshake(&ep, &hello, Date::new(2022, 2, 28).midnight());
        assert!(out
            .observed_certificate()
            .unwrap()
            .covers(&"mqtt.googleapis.com".parse().unwrap()));
    }

    #[test]
    fn amazon_mqtt_requires_client_cert() {
        let w = world();
        let a = w.provider_index("amazon");
        let server = w
            .servers
            .iter()
            .find(|s| s.provider == a && s.ip.is_ipv4())
            .unwrap();
        let view = w.view_on(Date::new(2022, 2, 28));
        let ep = view.tls_endpoint(server.ip, PortProto::tcp(8883)).unwrap();
        assert_eq!(ep.client_auth, ClientAuth::RequireClientCert);
    }

    #[test]
    fn plaintext_ports_have_no_tls() {
        let w = world();
        let ali = w.provider_index("alibaba");
        let server = w
            .servers
            .iter()
            .find(|s| s.provider == ali && s.ip.is_ipv4())
            .unwrap();
        let view = w.view_on(Date::new(2022, 2, 28));
        assert!(view.tls_endpoint(server.ip, PortProto::tcp(1883)).is_none());
    }

    #[test]
    fn churned_servers_disappear_from_view() {
        let w = world();
        let (d0, _) = w.sim_days;
        let eph = w
            .servers
            .iter()
            .find(|s| s.ip.is_ipv4() && s.born_day > d0 + 10)
            .expect("ephemeral server exists");
        let before = Date::from_epoch_days(eph.born_day - 1);
        let during = Date::from_epoch_days(eph.born_day);
        let view_before = w.view_on(before);
        let view_during = w.view_on(during);
        let v4 = match eph.ip {
            IpAddr::V4(a) => a,
            _ => unreachable!(),
        };
        assert!(!view_before.ipv4_hosts().iter().any(|(a, _)| *a == v4));
        assert!(view_during.ipv4_hosts().iter().any(|(a, _)| *a == v4));
    }

    #[test]
    fn geolocation_mostly_right() {
        let w = world();
        let view = w.view_on(Date::new(2022, 2, 28));
        let mut right = 0;
        let mut total = 0;
        for s in w.servers.iter().filter(|s| s.ip.is_ipv4()).take(500) {
            let truth = w.geo.location(w.site_city[s.provider][s.site]);
            let got = view.geolocate(s.ip).unwrap();
            total += 1;
            if got.city == truth.city {
                right += 1;
            }
        }
        let acc = right as f64 / total as f64;
        assert!(acc > 0.90, "geo accuracy {acc}");
        // And deterministic per IP.
        let s = w.servers.iter().find(|s| s.ip.is_ipv4()).unwrap();
        assert_eq!(view.geolocate(s.ip), view.geolocate(s.ip));
    }

    #[test]
    fn latency_prober_reflects_geography() {
        let w = world();
        let prober = WorldLatencyProber { world: &w };
        let sites = iotmap_scan::lookingglass::default_sites();
        let m = w.provider_index("microsoft");
        let fra_server = w
            .servers
            .iter()
            .find(|s| {
                s.provider == m
                    && w.geo.location(w.site_city[s.provider][s.site]).city == "Frankfurt"
            })
            .unwrap();
        let rtt_fra = prober.rtt_ms(&sites[0], fra_server.ip).unwrap(); // lg-frankfurt
        let rtt_sin = prober.rtt_ms(&sites[2], fra_server.ip).unwrap(); // lg-singapore
        assert!(rtt_fra < rtt_sin);
    }
}
