//! Disruption events: the AWS outage, BGP incidents, and blocklists (§6).

use iotmap_nettypes::interval::IntervalSet;
use iotmap_nettypes::{Asn, Ipv4Prefix, SimRng, StudyPeriod};
use std::collections::HashSet;
use std::net::{IpAddr, Ipv4Addr};

/// The December 7, 2021 AWS us-east-1 outage (§6.1), as a parameterized
/// event the traffic simulator honours.
#[derive(Debug, Clone)]
pub struct OutageEvent {
    /// Cloud operator affected.
    pub cloud: &'static str,
    /// Region affected.
    pub region: &'static str,
    /// The outage window.
    pub window: StudyPeriod,
    /// Fraction of normal downstream bytes still delivered by affected
    /// gateways (devices mostly see timeouts; some paths limp along).
    pub downstream_residual: f64,
    /// Fraction of normal upstream bytes: devices keep *retrying*, so
    /// upstream shrinks less than downstream — which is why Fig. 16 shows
    /// subscriber-line counts barely moving while Fig. 15 shows a >14.5%
    /// volume drop.
    pub upstream_residual: f64,
    /// Probability an affected device goes fully silent during the window.
    pub silence_prob: f64,
    /// Relative dip applied to the *same provider's* other regions
    /// (cross-region interdependencies; the paper observed a slight EU
    /// dip).
    pub spillover: f64,
}

impl OutageEvent {
    /// The historical AWS us-east-1 event.
    pub fn aws_dec_2021() -> Self {
        OutageEvent {
            cloud: "aws",
            region: "us-east-1",
            window: StudyPeriod::aws_outage_window(),
            downstream_residual: 0.5,
            upstream_residual: 0.65,
            silence_prob: 0.08,
            spillover: 0.05,
        }
    }
}

/// Kind of a BGPStream incident (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BgpStreamEventKind {
    Leak,
    PossibleHijack,
    AsOutage,
}

/// One BGPStream incident record.
#[derive(Debug, Clone)]
pub struct BgpStreamEvent {
    pub kind: BgpStreamEventKind,
    /// Affected prefix (leaks/hijacks).
    pub prefix: Option<Ipv4Prefix>,
    /// Affected AS (outages, and the origin of leaks/hijacks).
    pub asn: Asn,
}

/// One backend IP found on the FireHOL aggregate blocklist (§6.2), with
/// the (non-exclusive) source-list categories.
#[derive(Debug, Clone)]
pub struct BlocklistHit {
    pub ip: IpAddr,
    /// Provider index in the catalog.
    pub provider: usize,
    pub categories: Vec<&'static str>,
}

/// The FireHOL-style aggregate: a huge interval set plus the individual
/// backend hits planted in it.
#[derive(Debug, Clone)]
pub struct Firehol {
    /// The full aggregate (hundreds of millions of addresses).
    pub set: IntervalSet,
    /// Number of source lists aggregated.
    pub source_lists: u32,
    /// Ground truth: the backend IPs that were planted.
    pub planted: Vec<BlocklistHit>,
}

/// All disruption-related world state.
#[derive(Debug, Clone)]
pub struct Events {
    pub outage: OutageEvent,
    pub bgpstream: Vec<BgpStreamEvent>,
    pub firehol: Firehol,
}

impl Events {
    /// Generate events. `provider_asns` and `provider_prefixes` are the
    /// ground-truth backend resources the BGPStream incidents must *miss*
    /// (the paper found none of the 10 leaks / 40 hijacks / 166 outages
    /// affected any backend); `blocklist_candidates[p]` are per-provider
    /// IPv4 addresses eligible for blocklist planting.
    pub fn generate(
        rng: &mut SimRng,
        provider_asns: &HashSet<Asn>,
        blocklist_candidates: &[(usize, Vec<Ipv4Addr>)],
        provider_name_of: impl Fn(usize) -> &'static str,
    ) -> Events {
        let mut rng = rng.fork("events");

        // --- BGPStream incidents, §6.2: 10 leaks, 40 possible hijacks,
        // 166 AS outages, all in unrelated address/AS space.
        let mut bgpstream = Vec::new();
        let random_unrelated_asn = |rng: &mut SimRng| loop {
            let a = Asn(rng.gen_range(50_000, 64_000) as u32);
            if !provider_asns.contains(&a) {
                break a;
            }
        };
        // Incident prefixes live in 130.0.0.0/7-ish academic space — far
        // away from every backend block the world allocates.
        let random_unrelated_prefix = |rng: &mut SimRng| {
            let octet1 = 130 + rng.gen_below(8) as u32;
            let addr = (octet1 << 24) | ((rng.gen_below(256) as u32) << 16);
            Ipv4Prefix::new(Ipv4Addr::from(addr), rng.gen_range(16, 25) as u8)
        };
        for _ in 0..10 {
            let asn = random_unrelated_asn(&mut rng);
            bgpstream.push(BgpStreamEvent {
                kind: BgpStreamEventKind::Leak,
                prefix: Some(random_unrelated_prefix(&mut rng)),
                asn,
            });
        }
        for _ in 0..40 {
            let asn = random_unrelated_asn(&mut rng);
            bgpstream.push(BgpStreamEvent {
                kind: BgpStreamEventKind::PossibleHijack,
                prefix: Some(random_unrelated_prefix(&mut rng)),
                asn,
            });
        }
        for _ in 0..166 {
            let asn = random_unrelated_asn(&mut rng);
            bgpstream.push(BgpStreamEvent {
                kind: BgpStreamEventKind::AsOutage,
                prefix: None,
                asn,
            });
        }

        // --- FireHOL aggregate: >610M addresses from 67 lists. The bulk
        // is large botnet/abuse ranges in address space the world does not
        // use for backends.
        let mut set = IntervalSet::new();
        let bulk_octets: [u32; 37] = [
            1, 2, 5, 14, 27, 31, 36, 37, 42, 49, 58, 59, 61, 77, 78, 79, 89, 91, 94, 101, 102, 103,
            106, 110, 111, 112, 113, 114, 115, 116, 117, 118, 119, 120, 121, 122, 123,
        ];
        for o in bulk_octets {
            set.insert_prefix(Ipv4Prefix::new(Ipv4Addr::from(o << 24), 8));
        }

        // Plant blocklisted backend IPs with the paper's per-provider
        // distribution (§6.2): Baidu 5, Microsoft 4, SAP 4, Google 3,
        // Amazon 2, Alibaba 1. The inclusion reasons are non-exclusive:
        // roughly four open-proxy/anonymizer, one malware, five network
        // attacks/spam, and nine from a personal blocklist.
        let per_provider: &[(&str, usize)] = &[
            ("baidu", 5),
            ("microsoft", 4),
            ("sap", 4),
            ("google", 3),
            ("amazon", 2),
            ("alibaba", 1),
        ];
        let primary = [
            "open-proxy",
            "open-proxy",
            "open-proxy",
            "anonymizer",
            "malware",
            "network-attacks",
            "network-attacks",
            "network-attacks",
            "spam",
            "spam",
        ];
        let mut planted = Vec::new();
        let mut listings = 0usize;
        for (name, want) in per_provider {
            let Some((pidx, candidates)) = blocklist_candidates
                .iter()
                .find(|(p, _)| provider_name_of(*p) == *name)
            else {
                continue;
            };
            if candidates.is_empty() {
                continue;
            }
            let take = (*want).min(candidates.len());
            let picks = rng.sample_indices(candidates.len(), take);
            for ci in picks {
                let ip = candidates[ci];
                // Nine listings come from the personal blocklist; the rest
                // draw from the public categories, occasionally both.
                let mut cats = if listings < 9 {
                    vec!["personal-blocklist"]
                } else {
                    vec![primary[(listings - 9) % primary.len()]]
                };
                if listings.is_multiple_of(6) && cats[0] != "personal-blocklist" {
                    cats.push("personal-blocklist");
                }
                listings += 1;
                set.insert(u32::from(ip) as u64);
                planted.push(BlocklistHit {
                    ip: IpAddr::V4(ip),
                    provider: *pidx,
                    categories: cats,
                });
            }
        }

        Events {
            outage: OutageEvent::aws_dec_2021(),
            bgpstream,
            firehol: Firehol {
                set,
                source_lists: 67,
                planted,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provider_names() -> Vec<&'static str> {
        vec![
            "alibaba",
            "amazon",
            "baidu",
            "bosch",
            "cisco",
            "fujitsu",
            "google",
            "huawei",
            "ibm",
            "microsoft",
            "oracle",
            "ptc",
            "sap",
            "siemens",
            "sierra",
            "tencent",
        ]
    }

    fn candidates() -> Vec<(usize, Vec<Ipv4Addr>)> {
        provider_names()
            .iter()
            .enumerate()
            .map(|(i, _)| {
                (
                    i,
                    (0..20u8)
                        .map(|k| Ipv4Addr::new(60, i as u8, 0, k))
                        .collect(),
                )
            })
            .collect()
    }

    fn gen() -> Events {
        let names = provider_names();
        let mut rng = SimRng::new(42);
        let asns: HashSet<Asn> = [16509, 8075, 15169, 8068].iter().map(|&a| Asn(a)).collect();
        Events::generate(&mut rng, &asns, &candidates(), move |i| names[i])
    }

    #[test]
    fn bgpstream_counts_match_paper() {
        let e = gen();
        let count = |k| e.bgpstream.iter().filter(|ev| ev.kind == k).count();
        assert_eq!(count(BgpStreamEventKind::Leak), 10);
        assert_eq!(count(BgpStreamEventKind::PossibleHijack), 40);
        assert_eq!(count(BgpStreamEventKind::AsOutage), 166);
    }

    #[test]
    fn bgpstream_avoids_backend_asns() {
        let e = gen();
        for ev in &e.bgpstream {
            assert!(![16509u32, 8075, 15169, 8068].contains(&ev.asn.value()));
        }
    }

    #[test]
    fn firehol_size_and_plants() {
        let e = gen();
        assert!(e.firehol.set.len() > 600_000_000, "{}", e.firehol.set.len());
        assert_eq!(e.firehol.source_lists, 67);
        assert_eq!(e.firehol.planted.len(), 19);
        for hit in &e.firehol.planted {
            match hit.ip {
                IpAddr::V4(v4) => assert!(e.firehol.set.contains_v4(v4)),
                IpAddr::V6(_) => panic!("v6 plant"),
            }
            assert!(!hit.categories.is_empty());
        }
    }

    #[test]
    fn firehol_per_provider_distribution() {
        let e = gen();
        let names = provider_names();
        let count = |n: &str| {
            e.firehol
                .planted
                .iter()
                .filter(|h| names[h.provider] == n)
                .count()
        };
        assert_eq!(count("baidu"), 5);
        assert_eq!(count("microsoft"), 4);
        assert_eq!(count("sap"), 4);
        assert_eq!(count("google"), 3);
        assert_eq!(count("amazon"), 2);
        assert_eq!(count("alibaba"), 1);
        assert_eq!(count("bosch"), 0);
        // Planted IPs span exactly 6 providers.
        let providers: HashSet<_> = e.firehol.planted.iter().map(|h| h.provider).collect();
        assert_eq!(providers.len(), 6);
    }

    #[test]
    fn outage_parameters() {
        let e = gen();
        assert_eq!(e.outage.cloud, "aws");
        assert_eq!(e.outage.region, "us-east-1");
        assert!(e.outage.downstream_residual < e.outage.upstream_residual);
        assert!(e.outage.window.contains(
            iotmap_nettypes::Date::new(2021, 12, 7).midnight()
                + iotmap_nettypes::SimDuration::hours(18)
        ));
    }

    #[test]
    fn deterministic() {
        let a = gen();
        let b = gen();
        assert_eq!(a.firehol.planted.len(), b.firehol.planted.len());
        for (x, y) in a.firehol.planted.iter().zip(b.firehol.planted.iter()) {
            assert_eq!(x.ip, y.ip);
        }
        assert_eq!(a.bgpstream.len(), b.bgpstream.len());
    }
}
