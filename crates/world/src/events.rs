//! Disruption events: the AWS outage, BGP incidents, and blocklists (§6),
//! plus the scheduled scenario timeline (migrations, fronting flips, cert
//! storms) that `iotmap-scenario` compiles into a [`CompiledTimeline`].

use crate::build::World;
use crate::geodb::CityId;
use crate::server::ServerId;
use iotmap_nettypes::interval::IntervalSet;
use iotmap_nettypes::{Asn, Ipv4Prefix, SimRng, SimTime, StudyPeriod};
use iotmap_tls::Certificate;
use std::collections::{HashMap, HashSet};
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

/// The December 7, 2021 AWS us-east-1 outage (§6.1), as a parameterized
/// event the traffic simulator honours.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageEvent {
    /// Cloud operator affected.
    pub cloud: String,
    /// Region affected.
    pub region: String,
    /// The outage window.
    pub window: StudyPeriod,
    /// Fraction of normal downstream bytes still delivered by affected
    /// gateways (devices mostly see timeouts; some paths limp along).
    pub downstream_residual: f64,
    /// Fraction of normal upstream bytes: devices keep *retrying*, so
    /// upstream shrinks less than downstream — which is why Fig. 16 shows
    /// subscriber-line counts barely moving while Fig. 15 shows a >14.5%
    /// volume drop.
    pub upstream_residual: f64,
    /// Probability an affected device goes fully silent during the window.
    pub silence_prob: f64,
    /// Relative dip applied to the *same provider's* other regions
    /// (cross-region interdependencies; the paper observed a slight EU
    /// dip).
    pub spillover: f64,
}

impl OutageEvent {
    /// The historical AWS us-east-1 event.
    pub fn aws_dec_2021() -> Self {
        OutageEvent {
            cloud: "aws".to_string(),
            region: "us-east-1".to_string(),
            window: StudyPeriod::aws_outage_window(),
            downstream_residual: 0.5,
            upstream_residual: 0.65,
            silence_prob: 0.08,
            spillover: 0.05,
        }
    }

    /// Multiplicative `(downstream, upstream)` byte scaling for one device
    /// session at `time`, given whether the target server sits in the
    /// outage blast zone (`affected`), merely on the same cloud
    /// (`same_cloud`), and whether this device's firmware goes fully
    /// silent instead of retrying (`silent`). `None` means the session
    /// never happens.
    pub fn session_scaling(
        &self,
        time: SimTime,
        affected: bool,
        same_cloud: bool,
        silent: bool,
    ) -> Option<(f64, f64)> {
        if !self.window.contains(time) {
            return Some((1.0, 1.0));
        }
        if affected {
            if silent {
                return None;
            }
            Some((self.downstream_residual, self.upstream_residual))
        } else if same_cloud {
            Some((1.0 - self.spillover, 1.0 - self.spillover))
        } else {
            Some((1.0, 1.0))
        }
    }
}

/// Kind of a BGPStream incident (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BgpStreamEventKind {
    Leak,
    PossibleHijack,
    AsOutage,
}

/// One BGPStream incident record.
#[derive(Debug, Clone)]
pub struct BgpStreamEvent {
    pub kind: BgpStreamEventKind,
    /// Affected prefix (leaks/hijacks).
    pub prefix: Option<Ipv4Prefix>,
    /// Affected AS (outages, and the origin of leaks/hijacks).
    pub asn: Asn,
}

/// One backend IP found on the FireHOL aggregate blocklist (§6.2), with
/// the (non-exclusive) source-list categories.
#[derive(Debug, Clone)]
pub struct BlocklistHit {
    pub ip: IpAddr,
    /// Provider index in the catalog.
    pub provider: usize,
    pub categories: Vec<&'static str>,
}

/// The FireHOL-style aggregate: a huge interval set plus the individual
/// backend hits planted in it.
#[derive(Debug, Clone)]
pub struct Firehol {
    /// The full aggregate (hundreds of millions of addresses).
    pub set: IntervalSet,
    /// Number of source lists aggregated.
    pub source_lists: u32,
    /// Ground truth: the backend IPs that were planted.
    pub planted: Vec<BlocklistHit>,
}

/// All disruption-related world state.
#[derive(Debug, Clone)]
pub struct Events {
    pub outage: OutageEvent,
    pub bgpstream: Vec<BgpStreamEvent>,
    pub firehol: Firehol,
}

impl Events {
    /// Generate events. `provider_asns` and `provider_prefixes` are the
    /// ground-truth backend resources the BGPStream incidents must *miss*
    /// (the paper found none of the 10 leaks / 40 hijacks / 166 outages
    /// affected any backend); `blocklist_candidates[p]` are per-provider
    /// IPv4 addresses eligible for blocklist planting.
    pub fn generate(
        rng: &mut SimRng,
        provider_asns: &HashSet<Asn>,
        blocklist_candidates: &[(usize, Vec<Ipv4Addr>)],
        provider_name_of: impl Fn(usize) -> &'static str,
    ) -> Events {
        let mut rng = rng.fork("events");

        // --- BGPStream incidents, §6.2: 10 leaks, 40 possible hijacks,
        // 166 AS outages, all in unrelated address/AS space.
        let mut bgpstream = Vec::new();
        let random_unrelated_asn = |rng: &mut SimRng| loop {
            let a = Asn(rng.gen_range(50_000, 64_000) as u32);
            if !provider_asns.contains(&a) {
                break a;
            }
        };
        // Incident prefixes live in 130.0.0.0/7-ish academic space — far
        // away from every backend block the world allocates.
        let random_unrelated_prefix = |rng: &mut SimRng| {
            let octet1 = 130 + rng.gen_below(8) as u32;
            let addr = (octet1 << 24) | ((rng.gen_below(256) as u32) << 16);
            Ipv4Prefix::new(Ipv4Addr::from(addr), rng.gen_range(16, 25) as u8)
        };
        for _ in 0..10 {
            let asn = random_unrelated_asn(&mut rng);
            bgpstream.push(BgpStreamEvent {
                kind: BgpStreamEventKind::Leak,
                prefix: Some(random_unrelated_prefix(&mut rng)),
                asn,
            });
        }
        for _ in 0..40 {
            let asn = random_unrelated_asn(&mut rng);
            bgpstream.push(BgpStreamEvent {
                kind: BgpStreamEventKind::PossibleHijack,
                prefix: Some(random_unrelated_prefix(&mut rng)),
                asn,
            });
        }
        for _ in 0..166 {
            let asn = random_unrelated_asn(&mut rng);
            bgpstream.push(BgpStreamEvent {
                kind: BgpStreamEventKind::AsOutage,
                prefix: None,
                asn,
            });
        }

        // --- FireHOL aggregate: >610M addresses from 67 lists. The bulk
        // is large botnet/abuse ranges in address space the world does not
        // use for backends.
        let mut set = IntervalSet::new();
        let bulk_octets: [u32; 37] = [
            1, 2, 5, 14, 27, 31, 36, 37, 42, 49, 58, 59, 61, 77, 78, 79, 89, 91, 94, 101, 102, 103,
            106, 110, 111, 112, 113, 114, 115, 116, 117, 118, 119, 120, 121, 122, 123,
        ];
        for o in bulk_octets {
            set.insert_prefix(Ipv4Prefix::new(Ipv4Addr::from(o << 24), 8));
        }

        // Plant blocklisted backend IPs with the paper's per-provider
        // distribution (§6.2): Baidu 5, Microsoft 4, SAP 4, Google 3,
        // Amazon 2, Alibaba 1. The inclusion reasons are non-exclusive:
        // roughly four open-proxy/anonymizer, one malware, five network
        // attacks/spam, and nine from a personal blocklist.
        let per_provider: &[(&str, usize)] = &[
            ("baidu", 5),
            ("microsoft", 4),
            ("sap", 4),
            ("google", 3),
            ("amazon", 2),
            ("alibaba", 1),
        ];
        let primary = [
            "open-proxy",
            "open-proxy",
            "open-proxy",
            "anonymizer",
            "malware",
            "network-attacks",
            "network-attacks",
            "network-attacks",
            "spam",
            "spam",
        ];
        let mut planted = Vec::new();
        let mut listings = 0usize;
        for (name, want) in per_provider {
            let Some((pidx, candidates)) = blocklist_candidates
                .iter()
                .find(|(p, _)| provider_name_of(*p) == *name)
            else {
                continue;
            };
            if candidates.is_empty() {
                continue;
            }
            let take = (*want).min(candidates.len());
            let picks = rng.sample_indices(candidates.len(), take);
            for ci in picks {
                let ip = candidates[ci];
                // Nine listings come from the personal blocklist; the rest
                // draw from the public categories, occasionally both.
                let mut cats = if listings < 9 {
                    vec!["personal-blocklist"]
                } else {
                    vec![primary[(listings - 9) % primary.len()]]
                };
                if listings.is_multiple_of(6) && cats[0] != "personal-blocklist" {
                    cats.push("personal-blocklist");
                }
                listings += 1;
                set.insert(u32::from(ip) as u64);
                planted.push(BlocklistHit {
                    ip: IpAddr::V4(ip),
                    provider: *pidx,
                    categories: cats,
                });
            }
        }

        Events {
            outage: OutageEvent::aws_dec_2021(),
            bgpstream,
            firehol: Firehol {
                set,
                source_lists: 67,
                planted,
            },
        }
    }
}

// ------------------------------------------------------- scenario timeline

/// One scheduled world event in a scenario timeline. Days are offsets from
/// the start of the run's study period.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduledEvent {
    /// Replace the built-in outage with a scenario-defined one.
    Outage(OutageEvent),
    /// Append a BGPStream-style incident record.
    BgpIncident {
        kind: BgpStreamEventKind,
        asn: Asn,
        prefix: Option<Ipv4Prefix>,
    },
    /// Plant `count` extra backend IPs of a provider on the blocklist.
    BlocklistPlant {
        provider: String,
        count: u32,
        category: String,
    },
    /// A fraction of a provider's IPv4 fleet moves to another cloud region
    /// mid-study: old addresses go dark, new addresses (in the target
    /// region's announced block) come up with the same certificates.
    ProviderRegionMigration {
        provider: String,
        day: u32,
        fraction: f64,
        to_cloud: String,
        to_region: String,
    },
    /// A provider flips behind (or out of) a generic CDN/anycast front:
    /// anonymous scanners start (or stop) seeing the uninformative
    /// load-balancer certificate instead of the IoT one.
    AnycastFrontingFlip {
        provider: String,
        day: u32,
        into_fronting: bool,
    },
    /// Mass certificate reissue/expiry burst: reissued certificates churn
    /// the interned cert identity (new issuer), expired ones fall out of
    /// the paper's §3.3 validity filter entirely.
    CertRotationStorm {
        provider: String,
        day: u32,
        reissue_fraction: f64,
        expiry_fraction: f64,
    },
}

/// A seeded, deterministic timeline of scheduled events — what a scenario
/// file compiles into. Event selection (which servers migrate, which
/// certificates rotate) uses pure hash rolls keyed on `seed`, so the
/// timeline is thread- and schedule-invariant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventTimeline {
    pub seed: u64,
    pub events: Vec<ScheduledEvent>,
}

impl EventTimeline {
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// One compiled migration: from `day` (epoch days) the server answers at
/// `new_ip` in the target region and its old address goes dark.
#[derive(Debug, Clone)]
pub struct Migration {
    pub day: i64,
    pub new_ip: Ipv4Addr,
    pub to_city: CityId,
}

/// One compiled fronting flip, applying to a whole provider from `day`.
#[derive(Debug, Clone)]
pub struct FrontingFlip {
    pub day: i64,
    pub into_fronting: bool,
}

/// One compiled certificate substitution, applying from `day`.
#[derive(Debug, Clone)]
pub struct StormCert {
    pub day: i64,
    pub cert: Arc<Certificate>,
}

/// An [`EventTimeline`] resolved against a concrete world: per-server
/// address moves, per-provider flips, per-server certificate swaps. The
/// default (empty) timeline is a strict no-op — scan views short-circuit
/// on empty maps, so baseline runs stay byte-identical.
#[derive(Debug, Clone, Default)]
pub struct CompiledTimeline {
    /// Scenario name (used as the obs counter prefix).
    pub name: String,
    /// ServerId → migration record.
    pub migrations: HashMap<ServerId, Migration>,
    /// New address → migrated server (reverse lookup for scan views).
    pub migrated_by_ip: HashMap<IpAddr, ServerId>,
    /// Provider index → fronting flip.
    pub flips: HashMap<usize, FrontingFlip>,
    /// ServerId → certificate substitution.
    pub storm_certs: HashMap<ServerId, StormCert>,
    /// Events/servers the compiler had to skip (unknown names, exhausted
    /// address space) — degraded coverage, surfaced instead of panicking.
    pub skipped: u64,
}

impl CompiledTimeline {
    /// Does this timeline change anything a scan view can observe?
    pub fn is_empty(&self) -> bool {
        self.migrations.is_empty() && self.flips.is_empty() && self.storm_certs.is_empty()
    }
}

impl World {
    /// Compile and install a scenario timeline. Infallible by design: the
    /// scenario layer validates names before a run; anything that still
    /// fails to resolve here (or runs out of address space) is skipped and
    /// counted in [`CompiledTimeline::skipped`] — the run degrades, it
    /// never panics.
    pub fn install_timeline(&mut self, timeline: &EventTimeline, name: &str) {
        let mut compiled = CompiledTimeline {
            name: name.to_string(),
            ..CompiledTimeline::default()
        };
        let day0 = self.config.study_period.start.epoch_days();
        let validity = crate::view::certificate_validity();
        for (eidx, event) in timeline.events.iter().enumerate() {
            match event {
                ScheduledEvent::Outage(ev) => {
                    self.events.outage = ev.clone();
                }
                ScheduledEvent::BgpIncident { kind, asn, prefix } => {
                    self.events.bgpstream.push(BgpStreamEvent {
                        kind: *kind,
                        prefix: *prefix,
                        asn: *asn,
                    });
                }
                ScheduledEvent::BlocklistPlant {
                    provider,
                    count,
                    category,
                } => {
                    let Some(pidx) = self.providers.iter().position(|p| p.name == provider) else {
                        compiled.skipped += 1;
                        continue;
                    };
                    let mut taken = 0u32;
                    for s in &self.servers {
                        if taken >= *count {
                            break;
                        }
                        let IpAddr::V4(v4) = s.ip else { continue };
                        if s.provider != pidx || self.events.firehol.set.contains_v4(v4) {
                            continue;
                        }
                        self.events.firehol.set.insert(u32::from(v4) as u64);
                        self.events.firehol.planted.push(BlocklistHit {
                            ip: s.ip,
                            provider: pidx,
                            categories: vec![leak_category(category)],
                        });
                        taken += 1;
                    }
                }
                ScheduledEvent::ProviderRegionMigration {
                    provider,
                    day,
                    fraction,
                    to_cloud,
                    to_region,
                } => {
                    let Some(pidx) = self.providers.iter().position(|p| p.name == provider) else {
                        compiled.skipped += 1;
                        continue;
                    };
                    let Some(region) = self
                        .clouds
                        .clouds
                        .iter()
                        .find(|c| c.name == to_cloud)
                        .and_then(|c| c.regions.iter().find(|r| &r.code == to_region))
                    else {
                        compiled.skipped += 1;
                        continue;
                    };
                    // Allocate target addresses from the TOP of the target
                    // region's block: site /24s are carved from the bottom,
                    // so the two ends only meet when the region is full.
                    let block = region.v4_block;
                    let base = block.network_u32();
                    let mut cursor = base.wrapping_add((block.size() - 2) as u32);
                    let move_day = day0 + *day as i64;
                    for sid in 0..self.servers.len() {
                        let s = &self.servers[sid];
                        if s.provider != pidx
                            || !s.ip.is_ipv4()
                            || compiled.migrations.contains_key(&sid)
                            || !iotmap_faults::drops(
                                timeline.seed,
                                "scenario.migration",
                                iotmap_faults::key2(eidx as u64, sid as u64),
                                *fraction,
                            )
                        {
                            continue;
                        }
                        let mut new_ip = None;
                        while cursor > base {
                            let cand = IpAddr::V4(Ipv4Addr::from(cursor));
                            cursor -= 1;
                            if !self.server_by_ip.contains_key(&cand)
                                && !compiled.migrated_by_ip.contains_key(&cand)
                            {
                                new_ip = Some(cand);
                                break;
                            }
                        }
                        let Some(new_ip) = new_ip else {
                            // Region exhausted: the rest of the fleet
                            // stays put.
                            compiled.skipped += 1;
                            continue;
                        };
                        let IpAddr::V4(v4) = new_ip else {
                            unreachable!()
                        };
                        compiled.migrated_by_ip.insert(new_ip, sid);
                        compiled.migrations.insert(
                            sid,
                            Migration {
                                day: move_day,
                                new_ip: v4,
                                to_city: region.city,
                            },
                        );
                    }
                }
                ScheduledEvent::AnycastFrontingFlip {
                    provider,
                    day,
                    into_fronting,
                } => {
                    let Some(pidx) = self.providers.iter().position(|p| p.name == provider) else {
                        compiled.skipped += 1;
                        continue;
                    };
                    compiled.flips.insert(
                        pidx,
                        FrontingFlip {
                            day: day0 + *day as i64,
                            into_fronting: *into_fronting,
                        },
                    );
                }
                ScheduledEvent::CertRotationStorm {
                    provider,
                    day,
                    reissue_fraction,
                    expiry_fraction,
                } => {
                    let Some(pidx) = self.providers.iter().position(|p| p.name == provider) else {
                        compiled.skipped += 1;
                        continue;
                    };
                    let storm_day = day0 + *day as i64;
                    let storm_time = SimTime((storm_day.max(0) as u64) * 86_400);
                    for sid in 0..self.servers.len() {
                        if self.servers[sid].provider != pidx {
                            continue;
                        }
                        let key = iotmap_faults::key2(eidx as u64, sid as u64);
                        let reissued = iotmap_faults::drops(
                            timeline.seed,
                            "scenario.storm.reissue",
                            key,
                            *reissue_fraction,
                        );
                        let expired = !reissued
                            && iotmap_faults::drops(
                                timeline.seed,
                                "scenario.storm.expire",
                                key,
                                *expiry_fraction,
                            );
                        if !reissued && !expired {
                            continue;
                        }
                        let spec = &self.providers[pidx];
                        let site = self.servers[sid].site;
                        let mut cert =
                            Certificate::new(spec.display, self.cert_sans(spec, site), validity);
                        if reissued {
                            // A fresh issuing intermediate per server:
                            // same SANs, new interned identity.
                            let gen =
                                2 + iotmap_faults::key3(timeline.seed, eidx as u64, sid as u64) % 7;
                            cert.issuer = format!("SimTrust Public CA G{gen}");
                        } else {
                            // The old certificate simply runs out mid-study
                            // and falls to the §3.3 validity filter.
                            cert.not_after = storm_time;
                        }
                        compiled.storm_certs.insert(
                            sid,
                            StormCert {
                                day: storm_day,
                                cert: Arc::new(cert),
                            },
                        );
                    }
                }
            }
        }
        self.timeline = compiled;
    }
}

/// Scenario blocklist categories are free-form; map them onto the static
/// category vocabulary the paper uses, defaulting to the personal list.
fn leak_category(cat: &str) -> &'static str {
    match cat {
        "open-proxy" => "open-proxy",
        "anonymizer" => "anonymizer",
        "malware" => "malware",
        "network-attacks" => "network-attacks",
        "spam" => "spam",
        _ => "personal-blocklist",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provider_names() -> Vec<&'static str> {
        vec![
            "alibaba",
            "amazon",
            "baidu",
            "bosch",
            "cisco",
            "fujitsu",
            "google",
            "huawei",
            "ibm",
            "microsoft",
            "oracle",
            "ptc",
            "sap",
            "siemens",
            "sierra",
            "tencent",
        ]
    }

    fn candidates() -> Vec<(usize, Vec<Ipv4Addr>)> {
        provider_names()
            .iter()
            .enumerate()
            .map(|(i, _)| {
                (
                    i,
                    (0..20u8)
                        .map(|k| Ipv4Addr::new(60, i as u8, 0, k))
                        .collect(),
                )
            })
            .collect()
    }

    fn gen() -> Events {
        let names = provider_names();
        let mut rng = SimRng::new(42);
        let asns: HashSet<Asn> = [16509, 8075, 15169, 8068].iter().map(|&a| Asn(a)).collect();
        Events::generate(&mut rng, &asns, &candidates(), move |i| names[i])
    }

    #[test]
    fn bgpstream_counts_match_paper() {
        let e = gen();
        let count = |k| e.bgpstream.iter().filter(|ev| ev.kind == k).count();
        assert_eq!(count(BgpStreamEventKind::Leak), 10);
        assert_eq!(count(BgpStreamEventKind::PossibleHijack), 40);
        assert_eq!(count(BgpStreamEventKind::AsOutage), 166);
    }

    #[test]
    fn bgpstream_avoids_backend_asns() {
        let e = gen();
        for ev in &e.bgpstream {
            assert!(![16509u32, 8075, 15169, 8068].contains(&ev.asn.value()));
        }
    }

    #[test]
    fn firehol_size_and_plants() {
        let e = gen();
        assert!(e.firehol.set.len() > 600_000_000, "{}", e.firehol.set.len());
        assert_eq!(e.firehol.source_lists, 67);
        assert_eq!(e.firehol.planted.len(), 19);
        for hit in &e.firehol.planted {
            match hit.ip {
                IpAddr::V4(v4) => assert!(e.firehol.set.contains_v4(v4)),
                IpAddr::V6(_) => panic!("v6 plant"),
            }
            assert!(!hit.categories.is_empty());
        }
    }

    #[test]
    fn firehol_per_provider_distribution() {
        let e = gen();
        let names = provider_names();
        let count = |n: &str| {
            e.firehol
                .planted
                .iter()
                .filter(|h| names[h.provider] == n)
                .count()
        };
        assert_eq!(count("baidu"), 5);
        assert_eq!(count("microsoft"), 4);
        assert_eq!(count("sap"), 4);
        assert_eq!(count("google"), 3);
        assert_eq!(count("amazon"), 2);
        assert_eq!(count("alibaba"), 1);
        assert_eq!(count("bosch"), 0);
        // Planted IPs span exactly 6 providers.
        let providers: HashSet<_> = e.firehol.planted.iter().map(|h| h.provider).collect();
        assert_eq!(providers.len(), 6);
    }

    #[test]
    fn outage_parameters() {
        let e = gen();
        assert_eq!(e.outage.cloud, "aws");
        assert_eq!(e.outage.region, "us-east-1");
        assert!(e.outage.downstream_residual < e.outage.upstream_residual);
        assert!(e.outage.window.contains(
            iotmap_nettypes::Date::new(2021, 12, 7).midnight()
                + iotmap_nettypes::SimDuration::hours(18)
        ));
    }

    #[test]
    fn deterministic() {
        let a = gen();
        let b = gen();
        assert_eq!(a.firehol.planted.len(), b.firehol.planted.len());
        for (x, y) in a.firehol.planted.iter().zip(b.firehol.planted.iter()) {
            assert_eq!(x.ip, y.ip);
        }
        assert_eq!(a.bgpstream.len(), b.bgpstream.len());
    }

    #[test]
    fn session_scaling_outside_window_is_identity() {
        let ev = OutageEvent::aws_dec_2021();
        let before = ev.window.start + iotmap_nettypes::SimDuration::seconds(0);
        let outside = SimTime(ev.window.end.unix() + 1);
        assert_eq!(
            ev.session_scaling(outside, true, true, true),
            Some((1.0, 1.0))
        );
        // Window start is inclusive: an affected, silent device drops out.
        assert_eq!(ev.session_scaling(before, true, false, true), None);
    }

    #[test]
    fn session_scaling_residuals_and_spillover() {
        let ev = OutageEvent::aws_dec_2021();
        let t = ev.window.start + iotmap_nettypes::SimDuration::hours(1);
        // Affected, retrying: residual multipliers, downstream < upstream.
        let (dn, up) = ev.session_scaling(t, true, false, false).unwrap();
        assert_eq!((dn, up), (ev.downstream_residual, ev.upstream_residual));
        assert!(dn < up);
        // Same cloud, other region: symmetric spillover dip.
        let (dn, up) = ev.session_scaling(t, false, true, false).unwrap();
        assert_eq!(dn, 1.0 - ev.spillover);
        assert_eq!(up, 1.0 - ev.spillover);
        // Unrelated provider: untouched, even for silent-firmware devices.
        assert_eq!(ev.session_scaling(t, false, false, true), Some((1.0, 1.0)));
        // Silence only applies to affected servers in the window.
        assert_eq!(ev.session_scaling(t, true, true, true), None);
    }

    #[test]
    fn bgpstream_membership_by_kind_and_prefix() {
        let e = gen();
        for ev in &e.bgpstream {
            match ev.kind {
                BgpStreamEventKind::Leak | BgpStreamEventKind::PossibleHijack => {
                    let p = ev.prefix.expect("leaks/hijacks carry a prefix");
                    // Incident space is 130.0.0.0/7-ish, never backend space.
                    let first = p.network_u32() >> 24;
                    assert!((130..138).contains(&first), "prefix {p:?}");
                }
                BgpStreamEventKind::AsOutage => assert!(ev.prefix.is_none()),
            }
        }
    }

    #[test]
    fn firehol_membership_excludes_unplanted_space() {
        let e = gen();
        // Bulk /8s are in; the backend-ish 60/8 space only via plants.
        assert!(e.firehol.set.contains_v4(Ipv4Addr::new(1, 2, 3, 4)));
        assert!(!e.firehol.set.contains_v4(Ipv4Addr::new(60, 200, 0, 1)));
        for hit in &e.firehol.planted {
            let IpAddr::V4(v4) = hit.ip else {
                panic!("v6 plant")
            };
            assert!(e.firehol.set.contains_v4(v4));
        }
    }
}

#[cfg(test)]
mod timeline_tests {
    use super::*;
    use crate::config::WorldConfig;

    fn world() -> World {
        World::generate(&WorldConfig::small(42))
    }

    fn timeline(events: Vec<ScheduledEvent>) -> EventTimeline {
        EventTimeline { seed: 7, events }
    }

    #[test]
    fn empty_timeline_is_noop() {
        let mut w = world();
        assert!(w.timeline.is_empty());
        w.install_timeline(&timeline(vec![]), "empty");
        assert!(w.timeline.is_empty());
        assert_eq!(w.timeline.skipped, 0);
    }

    #[test]
    fn migration_allocates_unique_targets_in_region_block() {
        let mut w = world();
        w.install_timeline(
            &timeline(vec![ScheduledEvent::ProviderRegionMigration {
                provider: "bosch".to_string(),
                day: 2,
                fraction: 0.5,
                to_cloud: "aws".to_string(),
                to_region: "ap-southeast-1".to_string(),
            }]),
            "mig",
        );
        assert!(!w.timeline.migrations.is_empty());
        let block = w.clouds.cloud("aws").region("ap-southeast-1").v4_block;
        let mut seen = HashSet::new();
        for (sid, m) in &w.timeline.migrations {
            assert!(block.contains(m.new_ip), "{} outside block", m.new_ip);
            assert!(seen.insert(m.new_ip), "duplicate target {}", m.new_ip);
            assert!(
                !w.server_by_ip.contains_key(&IpAddr::V4(m.new_ip)),
                "target collides with an existing server"
            );
            assert_eq!(w.timeline.migrated_by_ip[&IpAddr::V4(m.new_ip)], *sid);
        }
        // Deterministic: recompiling yields the identical assignment.
        let mut w2 = world();
        w2.install_timeline(
            &timeline(vec![ScheduledEvent::ProviderRegionMigration {
                provider: "bosch".to_string(),
                day: 2,
                fraction: 0.5,
                to_cloud: "aws".to_string(),
                to_region: "ap-southeast-1".to_string(),
            }]),
            "mig",
        );
        for (sid, m) in &w.timeline.migrations {
            assert_eq!(w2.timeline.migrations[sid].new_ip, m.new_ip);
        }
    }

    #[test]
    fn unknown_names_degrade_to_skips() {
        let mut w = world();
        w.install_timeline(
            &timeline(vec![
                ScheduledEvent::ProviderRegionMigration {
                    provider: "nonesuch".to_string(),
                    day: 0,
                    fraction: 1.0,
                    to_cloud: "aws".to_string(),
                    to_region: "us-east-1".to_string(),
                },
                ScheduledEvent::AnycastFrontingFlip {
                    provider: "alsonot".to_string(),
                    day: 0,
                    into_fronting: true,
                },
                ScheduledEvent::CertRotationStorm {
                    provider: "missing".to_string(),
                    day: 0,
                    reissue_fraction: 1.0,
                    expiry_fraction: 0.0,
                },
            ]),
            "bad",
        );
        assert_eq!(w.timeline.skipped, 3);
        assert!(w.timeline.is_empty());
    }

    #[test]
    fn outage_event_replaces_builtin() {
        let mut w = world();
        let mut ev = OutageEvent::aws_dec_2021();
        ev.cloud = "azure".to_string();
        ev.region = "westeurope".to_string();
        w.install_timeline(&timeline(vec![ScheduledEvent::Outage(ev.clone())]), "out");
        assert_eq!(w.events.outage, ev);
    }

    #[test]
    fn cert_storm_reissues_and_expires() {
        let mut w = world();
        w.install_timeline(
            &timeline(vec![ScheduledEvent::CertRotationStorm {
                provider: "microsoft".to_string(),
                day: 1,
                reissue_fraction: 0.5,
                expiry_fraction: 0.5,
            }]),
            "storm",
        );
        assert!(!w.timeline.storm_certs.is_empty());
        let validity = crate::view::certificate_validity();
        let mut reissued = 0;
        let mut expired = 0;
        for storm in w.timeline.storm_certs.values() {
            if storm.cert.issuer.starts_with("SimTrust Public CA G") {
                assert!(storm.cert.valid_during(&validity));
                reissued += 1;
            } else {
                assert!(!storm.cert.valid_during(&w.config.study_period));
                expired += 1;
            }
        }
        assert!(reissued > 0, "some certificates should be reissued");
        assert!(expired > 0, "some certificates should expire");
    }
}
