//! World generation: wiring providers, clouds, DNS, scans, ISP and events
//! into one deterministic ground truth.

use crate::clouds::{CloudCatalog, CloudRegion};
use crate::config::WorldConfig;
use crate::events::Events;
use crate::geodb::{CityId, GeoDb};
use crate::isp::{IspModel, TenantHomes};
use crate::providers::{catalog, DomainStyle, ProviderSpec, SiteHosting};
use crate::server::{Server, ServerId};
use iotmap_dns::{PassiveDnsDb, Policy, RData, ResolutionContext, RrType, ZoneDb};
use iotmap_nettypes::bgp::{BgpOrigin, BgpTable};
use iotmap_nettypes::{
    Asn, Continent, Date, DomainName, Ipv4Prefix, Ipv6Prefix, PortProto, SimDuration, SimRng,
};
use iotmap_scan::Ipv6Hitlist;
use std::collections::{HashMap, HashSet};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// One customer/tenant of a provider.
#[derive(Debug, Clone)]
pub struct TenantInfo {
    pub domain: DomainName,
    /// Home site index within the provider.
    pub home_site: usize,
    /// Covered by the passive-DNS sensor network at all (§3.6 coverage
    /// limitation).
    pub in_passive_dns: bool,
}

/// A non-IoT Internet host (scan and DNS background noise).
#[derive(Debug, Clone)]
pub struct BackgroundHost {
    pub ip: Ipv4Addr,
    pub ports: Vec<PortProto>,
    pub domain: DomainName,
    pub city: CityId,
}

/// What providers publish about their own address space (§3.4).
#[derive(Debug, Clone, Default)]
pub struct PublishedTruth {
    pub cisco_ips: Vec<IpAddr>,
    pub siemens_ips: Vec<IpAddr>,
    pub microsoft_prefixes: Vec<Ipv4Prefix>,
}

/// The generated world.
#[derive(Clone)]
pub struct World {
    pub config: WorldConfig,
    pub geo: GeoDb,
    pub clouds: CloudCatalog,
    pub providers: Vec<ProviderSpec>,
    pub servers: Vec<Server>,
    pub server_by_ip: HashMap<IpAddr, ServerId>,
    /// `[provider][site]` → city id.
    pub site_city: Vec<Vec<CityId>>,
    /// `[provider][site]` → *documented* IPv4 servers.
    pub site_pools: Vec<Vec<Vec<ServerId>>>,
    /// `[provider][site]` → *undocumented* IPv4 servers.
    pub site_hidden: Vec<Vec<Vec<ServerId>>>,
    /// `[provider][site]` → IPv6 servers.
    pub site_pools_v6: Vec<Vec<Vec<ServerId>>>,
    /// `[provider]` → tenants.
    pub tenants: Vec<Vec<TenantInfo>>,
    pub zones: ZoneDb,
    pub passive_dns: PassiveDnsDb,
    pub hitlist: Ipv6Hitlist,
    pub bgp: BgpTable,
    pub isp: IspModel,
    pub events: Events,
    /// Compiled scenario timeline (empty by default — a strict no-op).
    pub timeline: crate::events::CompiledTimeline,
    pub background: Vec<BackgroundHost>,
    pub published: PublishedTruth,
    /// Epoch-day range servers may live in (covers both study windows).
    pub sim_days: (i64, i64),
    /// Seed for per-IP geolocation noise in scan views.
    pub geo_noise_seed: u64,
    /// Lazily derived scan-view lookups (site certificates, background
    /// index); never part of the generated identity.
    pub(crate) view_cache: std::sync::OnceLock<crate::view::ViewCache>,
}

impl World {
    /// Generate the world from a configuration. Fully deterministic.
    pub fn generate(config: &WorldConfig) -> World {
        World::generate_with_pdns(config, None)
    }

    /// [`World::generate`] with an optional pre-built passive-DNS
    /// database (the facade's world cache stores one): when `Some`, the
    /// expensive passive-DNS fill is skipped and the supplied database
    /// installed in its place. Every generation phase forks the root RNG
    /// by name, so substituting this one phase leaves every other stream
    /// — and therefore every other artifact — byte-identical.
    pub fn generate_with_pdns(config: &WorldConfig, pdns: Option<PassiveDnsDb>) -> World {
        let _span = iotmap_obs::span!("world.generate");
        let rng = SimRng::new(config.seed);
        let geo = GeoDb::standard();
        let clouds = CloudCatalog::standard(&geo);
        let providers = catalog();

        let sim_days = (
            Date::new(2021, 11, 15).epoch_days(),
            Date::new(2022, 3, 15).epoch_days(),
        );

        let mut b = Builder {
            config: config.clone(),
            geo,
            clouds,
            providers,
            rng,
            sim_days,
            servers: Vec::new(),
            server_by_ip: HashMap::new(),
            site_city: Vec::new(),
            site_pools: Vec::new(),
            site_hidden: Vec::new(),
            site_pools_v6: Vec::new(),
            tenants: Vec::new(),
            zones: ZoneDb::new(),
            passive_dns: PassiveDnsDb::new(),
            hitlist: Ipv6Hitlist::new(),
            bgp: BgpTable::new(),
            background: Vec::new(),
            published: PublishedTruth::default(),
            own_block_counter: 0,
            cloud_slash24_next: HashMap::new(),
            pdns_domains: Vec::new(),
        };

        // Phase spans carry no RNG of their own (every stream below is
        // name-forked), so tracing cannot perturb determinism.
        {
            let _s = iotmap_obs::span!("world.servers");
            b.build_servers();
        }
        {
            let _s = iotmap_obs::span!("world.bgp");
            b.build_bgp();
        }
        {
            let _s = iotmap_obs::span!("world.tenants_zones");
            b.build_tenants_and_zones();
        }
        {
            let _s = iotmap_obs::span!("world.background");
            b.build_background();
        }
        {
            let _s = iotmap_obs::span!("world.hitlist");
            b.build_hitlist();
        }
        {
            let _s = iotmap_obs::span!("world.passive_dns");
            match pdns {
                Some(db) => {
                    iotmap_obs::annotate!("restored", 1u64);
                    b.passive_dns = db;
                }
                None => b.fill_passive_dns(),
            }
        }
        {
            let _s = iotmap_obs::span!("world.published");
            b.build_published();
        }

        // ISP population.
        let isp_span = iotmap_obs::span!("world.isp");
        let tenant_homes: Vec<TenantHomes> = b
            .tenants
            .iter()
            .map(|ts| TenantHomes {
                tenants: ts
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (i as u32, t.home_site))
                    .collect(),
            })
            .collect();
        let site_continent: Vec<Vec<Continent>> = b
            .site_city
            .iter()
            .map(|cities| {
                cities
                    .iter()
                    .map(|&c| b.geo.location(c).continent)
                    .collect()
            })
            .collect();
        let mut isp_rng = b.rng.fork("isp");
        let isp = IspModel::generate(
            &b.config,
            &b.providers,
            &tenant_homes,
            &site_continent,
            &mut isp_rng,
        );
        drop(isp_span);

        // Events.
        let events_span = iotmap_obs::span!("world.events");
        let provider_asns: HashSet<Asn> = b.servers.iter().map(|s| s.asn).collect();
        let names: Vec<&'static str> = b.providers.iter().map(|p| p.name).collect();
        let candidates: Vec<(usize, Vec<Ipv4Addr>)> = (0..b.providers.len())
            .map(|p| {
                let ips: Vec<Ipv4Addr> = b.site_pools[p]
                    .iter()
                    .flatten()
                    .take(40)
                    .filter_map(|&sid| match b.servers[sid].ip {
                        IpAddr::V4(v4) => Some(v4),
                        IpAddr::V6(_) => None,
                    })
                    .collect();
                (p, ips)
            })
            .collect();
        let mut ev_rng = b.rng.fork("events");
        let events = Events::generate(&mut ev_rng, &provider_asns, &candidates, move |i| names[i]);
        drop(events_span);

        iotmap_obs::gauge!("world.servers", b.servers.len() as i64);
        iotmap_obs::gauge!("world.isp_lines", isp.lines.len() as i64);
        World {
            geo_noise_seed: b.rng.fork("geonoise").next_u64(),
            config: b.config,
            geo: b.geo,
            clouds: b.clouds,
            providers: b.providers,
            servers: b.servers,
            server_by_ip: b.server_by_ip,
            site_city: b.site_city,
            site_pools: b.site_pools,
            site_hidden: b.site_hidden,
            site_pools_v6: b.site_pools_v6,
            tenants: b.tenants,
            zones: b.zones,
            passive_dns: b.passive_dns,
            hitlist: b.hitlist,
            bgp: b.bgp,
            isp,
            events,
            timeline: crate::events::CompiledTimeline::default(),
            background: b.background,
            published: b.published,
            sim_days,
            view_cache: std::sync::OnceLock::new(),
        }
    }

    /// Index of a provider by canonical name.
    pub fn provider_index(&self, name: &str) -> usize {
        self.providers
            .iter()
            .position(|p| p.name == name)
            .unwrap_or_else(|| panic!("unknown provider {name:?}"))
    }

    /// Ground truth: all of a provider's server IPs (both families),
    /// documented or not, alive at any point.
    pub fn true_ips(&self, provider: usize) -> HashSet<IpAddr> {
        self.servers
            .iter()
            .filter(|s| s.provider == provider)
            .map(|s| s.ip)
            .collect()
    }

    /// Ground truth: a provider's *documented* IPv4 servers.
    pub fn documented_v4(&self, provider: usize) -> HashSet<IpAddr> {
        self.servers
            .iter()
            .filter(|s| s.provider == provider && s.documented && s.ip.is_ipv4())
            .map(|s| s.ip)
            .collect()
    }

    /// All IPv4 server count (for visibility denominators).
    pub fn v4_server_count(&self) -> usize {
        self.servers.iter().filter(|s| s.ip.is_ipv4()).count()
    }

    /// Servers of a given provider at AWS `us-east-1` (outage blast zone).
    pub fn outage_affected_servers(&self) -> HashSet<ServerId> {
        let ev = &self.events.outage;
        self.servers
            .iter()
            .filter(|s| {
                matches!(
                    &self.providers[s.provider].sites[s.site].hosting,
                    SiteHosting::Cloud { cloud, region } if *cloud == ev.cloud && *region == ev.region
                )
            })
            .map(|s| s.id)
            .collect()
    }
}

/// Internal builder state.
struct Builder {
    config: WorldConfig,
    geo: GeoDb,
    clouds: CloudCatalog,
    providers: Vec<ProviderSpec>,
    rng: SimRng,
    sim_days: (i64, i64),
    servers: Vec<Server>,
    server_by_ip: HashMap<IpAddr, ServerId>,
    site_city: Vec<Vec<CityId>>,
    site_pools: Vec<Vec<Vec<ServerId>>>,
    site_hidden: Vec<Vec<Vec<ServerId>>>,
    site_pools_v6: Vec<Vec<Vec<ServerId>>>,
    tenants: Vec<Vec<TenantInfo>>,
    zones: ZoneDb,
    passive_dns: PassiveDnsDb,
    hitlist: Ipv6Hitlist,
    bgp: BgpTable,
    background: Vec<BackgroundHost>,
    published: PublishedTruth,
    /// Next /16 index inside 60.0.0.0/8 for own-DC sites.
    own_block_counter: u32,
    /// Next /24 index per cloud region block.
    cloud_slash24_next: HashMap<(String, String), u32>,
    /// All domains to feed into passive DNS: (domain, provider or usize::MAX,
    /// popularity, observed).
    pdns_domains: Vec<(DomainName, f64, bool)>,
}

impl Builder {
    /// The full service-port set of a provider's gateways.
    fn provider_ports(spec: &ProviderSpec) -> Vec<PortProto> {
        let mut ports: Vec<PortProto> = spec.profile.ports.iter().map(|s| s.port).collect();
        if let Some(h) = spec.profile.heavy {
            if !ports.contains(&h.port) {
                ports.push(h.port);
            }
        }
        for &p in &spec.client_cert_ports {
            let pp = PortProto::tcp(p);
            if !ports.contains(&pp) {
                ports.push(pp);
            }
        }
        // Every gateway fleet keeps an HTTPS management endpoint.
        if !ports.contains(&PortProto::tcp(443)) {
            ports.push(PortProto::tcp(443));
        }
        ports
    }

    fn build_servers(&mut self) {
        let providers = self.providers.clone();
        let mut rng = self.rng.fork("servers");
        for (pidx, spec) in providers.iter().enumerate() {
            let total_weight: f64 = spec.sites.iter().map(|s| s.weight).sum();
            let total_24s =
                (spec.slash24_target / self.config.ip_scale).max(spec.sites.len() as u32);
            let ports = Self::provider_ports(spec);

            let mut cities = Vec::new();
            let mut pools = Vec::new();
            let mut hidden = Vec::new();
            let mut pools_v6 = Vec::new();

            for (sidx, site) in spec.sites.iter().enumerate() {
                let city = self.geo.id_of(site.city);
                cities.push(city);
                let n24 = ((total_24s as f64 * site.weight / total_weight).round() as u32).max(1);
                let (asn, blocks) = self.site_blocks(site, n24);
                let mut pool = Vec::new();
                let mut hid = Vec::new();
                for block in blocks {
                    // One to three gateways per /24.
                    let n = 1 + rng.gen_below(3);
                    for i in 0..n {
                        let host = 1 + (i * 80 + rng.gen_below(60)) as u32;
                        let ip = IpAddr::V4(block.nth(host as u64 % 255));
                        if self.server_by_ip.contains_key(&ip) {
                            continue;
                        }
                        let id = self.servers.len();
                        let (born, died) = self.churn_window(spec.churn_daily, &mut rng);
                        let documented = !rng.chance(spec.undocumented_frac);
                        let server = Server {
                            id,
                            ip,
                            provider: pidx,
                            site: sidx,
                            asn,
                            ports: ports.clone(),
                            born_day: born,
                            died_day: died,
                            documented,
                            cert_exposed: rng.chance(spec.cert_exposed_frac),
                            shared: spec.shared_https
                                && (spec.name == "oracle"
                                    && matches!(site.hosting, SiteHosting::Cloud { .. })
                                    || spec.name == "google" && rng.chance(0.35)),
                            anycast: site.code == "anycast",
                        };
                        self.server_by_ip.insert(ip, id);
                        if documented {
                            pool.push(id);
                        } else {
                            hid.push(id);
                        }
                        self.servers.push(server);
                    }
                }

                // IPv6 servers: one or two per target /56.
                let mut pool6 = Vec::new();
                if site.v6_slash56 > 0 {
                    let v6_block = self.site_v6_block(pidx, sidx, site);
                    // Providers sharing a cloud region's /48 get disjoint
                    // /56 banks (16 slots each).
                    let bank = (pidx as u128) * 16;
                    for b56 in 0..site.v6_slash56 {
                        let base = Ipv6Prefix::new(
                            Ipv6Addr::from(v6_block.network_u128() + ((bank + b56 as u128) << 72)),
                            56,
                        );
                        let n = 2 + rng.gen_below(3);
                        for i in 0..n {
                            let ip = IpAddr::V6(base.nth(1 + i * 7));
                            if self.server_by_ip.contains_key(&ip) {
                                continue;
                            }
                            let id = self.servers.len();
                            self.server_by_ip.insert(ip, id);
                            self.servers.push(Server {
                                id,
                                ip,
                                provider: pidx,
                                site: sidx,
                                asn,
                                ports: ports
                                    .iter()
                                    .copied()
                                    .filter(|p| p.transport == iotmap_nettypes::Transport::Tcp)
                                    .collect(),
                                born_day: self.sim_days.0,
                                died_day: self.sim_days.1,
                                documented: true,
                                // IPv6 fleets are newer, HTTPS-fronted
                                // deployments: most expose a standard
                                // certificate, which is what makes them
                                // hitlist-discoverable at all.
                                cert_exposed: rng.chance(spec.cert_exposed_frac.max(0.85)),
                                shared: false,
                                anycast: false,
                            });
                            pool6.push(id);
                        }
                    }
                }

                pools.push(pool);
                hidden.push(hid);
                pools_v6.push(pool6);
            }

            self.site_city.push(cities);
            self.site_pools.push(pools);
            self.site_hidden.push(hidden);
            self.site_pools_v6.push(pools_v6);
        }
    }

    /// Allocate `n24` /24 blocks for a site, returning the announcing ASN
    /// and the blocks.
    fn site_blocks(
        &mut self,
        site: &crate::providers::SiteSpec,
        n24: u32,
    ) -> (Asn, Vec<Ipv4Prefix>) {
        match &site.hosting {
            SiteHosting::Own { asn } => {
                // Own /16 blocks carved from 60.0.0.0/8 (one per 256 /24s).
                let mut blocks = Vec::new();
                let mut remaining = n24;
                while remaining > 0 {
                    let slab = self.own_block_counter;
                    self.own_block_counter += 1;
                    let base = 0x3C_00_00_00u32 + slab * 0x1_00_00;
                    let take = remaining.min(256);
                    for i in 0..take {
                        blocks.push(Ipv4Prefix::new(Ipv4Addr::from(base + i * 256), 24));
                    }
                    remaining -= take;
                }
                (*asn, blocks)
            }
            SiteHosting::Cloud { cloud, region } => {
                let (block, asn) = {
                    let c = self.clouds.cloud(cloud);
                    let r: &CloudRegion = c.region(region);
                    (r.v4_block, CloudCatalog::asn_for_region(c, region))
                };
                let key = (cloud.to_string(), region.to_string());
                let next = self.cloud_slash24_next.entry(key).or_insert(0);
                let capacity = (block.size() / 256) as u32;
                let mut blocks = Vec::new();
                for _ in 0..n24 {
                    let idx = *next % capacity;
                    *next += 1;
                    blocks.push(Ipv4Prefix::new(
                        Ipv4Addr::from(block.network_u32() + idx * 256),
                        24,
                    ));
                }
                (asn, blocks)
            }
        }
    }

    /// The IPv6 /48 a site draws its /56s from.
    fn site_v6_block(
        &mut self,
        pidx: usize,
        sidx: usize,
        site: &crate::providers::SiteSpec,
    ) -> Ipv6Prefix {
        match &site.hosting {
            SiteHosting::Cloud { cloud, region } => {
                let c = self.clouds.cloud(cloud);
                let r = c.region(region);
                r.v6_block.unwrap_or_else(|| {
                    // Region without native v6: fall back to a provider /48.
                    Ipv6Prefix::new(
                        Ipv6Addr::from(
                            (0x2a09u128 << 112) | ((pidx as u128) << 96) | ((sidx as u128) << 80),
                        ),
                        48,
                    )
                })
            }
            SiteHosting::Own { .. } => Ipv6Prefix::new(
                Ipv6Addr::from(
                    (0x2a09u128 << 112) | ((pidx as u128) << 96) | ((sidx as u128) << 80),
                ),
                48,
            ),
        }
    }

    /// A server's lifetime given the provider's churn level.
    fn churn_window(&self, churn_daily: f64, rng: &mut SimRng) -> (i64, i64) {
        let (d0, d1) = self.sim_days;
        let ephemeral_frac = (churn_daily * 3.0).min(0.5);
        if churn_daily > 0.0 && rng.chance(ephemeral_frac) {
            let life = 2 + rng.gen_below(4) as i64;
            let born = d0 + rng.gen_below((d1 - d0 - life) as u64) as i64;
            (born, born + life)
        } else {
            (d0, d1)
        }
    }

    fn build_bgp(&mut self) {
        // Cloud region announcements.
        for cloud in &self.clouds.clouds {
            for region in &cloud.regions {
                let origin = BgpOrigin {
                    asn: CloudCatalog::asn_for_region(cloud, &region.code),
                    org: cloud.org.to_string(),
                    location_label: region.code.clone(),
                    location: Some(self.geo.location(region.city).clone()),
                };
                self.bgp.announce_v4(region.v4_block, origin.clone());
                if let Some(v6) = region.v6_block {
                    self.bgp.announce_v6(v6, origin);
                }
            }
        }
        // Own-DC announcements: aggregate each site's /24s into the /16
        // slabs they came from.
        let mut seen_slab: HashSet<u32> = HashSet::new();
        let mut v6_seen: HashSet<Ipv6Prefix> = HashSet::new();
        for s in &self.servers {
            let spec = &self.providers[s.provider];
            let site = &spec.sites[s.site];
            if let SiteHosting::Own { asn } = site.hosting {
                match s.ip {
                    IpAddr::V4(v4) => {
                        let slab = u32::from(v4) >> 16;
                        if seen_slab.insert(slab) {
                            self.bgp.announce_v4(
                                Ipv4Prefix::new(Ipv4Addr::from(slab << 16), 16),
                                BgpOrigin {
                                    asn,
                                    org: spec.display.to_string(),
                                    location_label: site.code.clone(),
                                    location: Some(
                                        self.geo
                                            .location(self.site_city[s.provider][s.site])
                                            .clone(),
                                    ),
                                },
                            );
                        }
                    }
                    IpAddr::V6(v6) => {
                        let p48 = Ipv6Prefix::new(v6, 48);
                        if v6_seen.insert(p48) {
                            self.bgp.announce_v6(
                                p48,
                                BgpOrigin {
                                    asn,
                                    org: spec.display.to_string(),
                                    location_label: site.code.clone(),
                                    location: Some(
                                        self.geo
                                            .location(self.site_city[s.provider][s.site])
                                            .clone(),
                                    ),
                                },
                            );
                        }
                    }
                }
            } else if let IpAddr::V6(v6) = s.ip {
                // Cloud-hosted v6 outside the region block fallback case.
                let p48 = Ipv6Prefix::new(v6, 48);
                if self.bgp.lookup_v6(v6).is_none() && v6_seen.insert(p48) {
                    let SiteHosting::Cloud { cloud, .. } = &site.hosting else {
                        unreachable!()
                    };
                    let c = self.clouds.cloud(cloud);
                    self.bgp.announce_v6(
                        p48,
                        BgpOrigin {
                            asn: c.asn,
                            org: c.org.to_string(),
                            location_label: site.code.clone(),
                            location: Some(
                                self.geo
                                    .location(self.site_city[s.provider][s.site])
                                    .clone(),
                            ),
                        },
                    );
                }
            }
        }
        // Background block.
        self.bgp.announce_v4(
            Ipv4Prefix::new(Ipv4Addr::new(93, 0, 0, 0), 8),
            BgpOrigin {
                asn: Asn(64496),
                org: "Example Hosting Conglomerate".to_string(),
                location_label: String::new(),
                location: None,
            },
        );
    }

    /// Pool of documented A records for `(provider, site)`.
    fn site_rdata(&self, pidx: usize, sidx: usize) -> Vec<RData> {
        self.site_pools[pidx][sidx]
            .iter()
            .filter_map(|&sid| match self.servers[sid].ip {
                IpAddr::V4(a) => Some(RData::A(a)),
                IpAddr::V6(_) => None,
            })
            .collect()
    }

    /// The AAAA pool a site exposes in DNS: only part of the IPv6 fleet
    /// is client-facing; the rest is reachable (and hitlist-scannable) but
    /// never handed to devices — which is why the paper sees only ~51% of
    /// discovered IPv6 backends in ISP traffic while discovering the rest
    /// through scans.
    fn site_rdata_v6(&self, pidx: usize, sidx: usize) -> Vec<RData> {
        let pool: Vec<RData> = self.site_pools_v6[pidx][sidx]
            .iter()
            .filter_map(|&sid| match self.servers[sid].ip {
                IpAddr::V6(a) => Some(RData::Aaaa(a)),
                IpAddr::V4(_) => None,
            })
            .collect();
        let keep = ((pool.len() / 2).max(1)).min(pool.len());
        pool.into_iter().take(keep).collect()
    }

    fn build_tenants_and_zones(&mut self) {
        let providers = self.providers.clone();
        let mut rng = self.rng.fork("tenants");
        for (pidx, spec) in providers.iter().enumerate() {
            let mut tenants = Vec::new();
            let weights: Vec<f64> = spec.sites.iter().map(|s| s.weight).collect();

            match &spec.domain_style {
                DomainStyle::TenantServiceRegion { service, sld } => {
                    for t in 0..spec.tenants {
                        let home = rng.choose_weighted(&weights);
                        let name = format!(
                            "t{:08x}.{service}.{}.{sld}",
                            rng.next_u32(),
                            spec.sites[home].code
                        );
                        let domain: DomainName = name.parse().expect("valid tenant domain");
                        let observed =
                            self.install_tenant_policy(pidx, home, &domain, spec, &mut rng, t);
                        tenants.push(TenantInfo {
                            domain,
                            home_site: home,
                            in_passive_dns: observed,
                        });
                    }
                }
                DomainStyle::TenantSld { sld } => {
                    for t in 0..spec.tenants {
                        let home = rng.choose_weighted(&weights);
                        let name = format!("hub-{:06x}.{sld}", rng.next_u32() & 0xFF_FFFF);
                        let domain: DomainName = name.parse().expect("valid tenant domain");
                        let observed =
                            self.install_tenant_policy(pidx, home, &domain, spec, &mut rng, t);
                        tenants.push(TenantInfo {
                            domain,
                            home_site: home,
                            in_passive_dns: observed,
                        });
                    }
                }
                DomainStyle::TenantRegion { sld } => {
                    for t in 0..spec.tenants {
                        let home = rng.choose_weighted(&weights);
                        let code = Self::region_domain_code(spec, home);
                        let name = format!("t{:06x}.{code}.{sld}", rng.next_u32() & 0xFF_FFFF);
                        let domain: DomainName = name.parse().expect("valid tenant domain");
                        let observed =
                            self.install_tenant_policy(pidx, home, &domain, spec, &mut rng, t);
                        tenants.push(TenantInfo {
                            domain,
                            home_site: home,
                            in_passive_dns: observed,
                        });
                    }
                }
                DomainStyle::ServiceRegion { services, sld } => {
                    // One well-known endpoint per (service, site).
                    for (sidx, site) in spec.sites.iter().enumerate() {
                        for service in *services {
                            let name = format!("{service}.{}.{sld}", site.code);
                            let domain: DomainName = name.parse().expect("valid service domain");
                            let pool = self.site_rdata(pidx, sidx);
                            if !pool.is_empty() {
                                self.zones.set_policy(
                                    domain.clone(),
                                    RrType::A,
                                    Policy::Static(pool),
                                );
                            }
                            let pool6 = self.site_rdata_v6(pidx, sidx);
                            if !pool6.is_empty() {
                                self.zones.set_policy(
                                    domain.clone(),
                                    RrType::Aaaa,
                                    Policy::Static(pool6),
                                );
                            }
                            self.pdns_domains.push((
                                domain,
                                0.9,
                                rng.chance(self.config.passive_dns_coverage),
                            ));
                        }
                    }
                }
                DomainStyle::Fixed { names } => {
                    if spec.name == "google" {
                        self.install_google_zones(pidx, names);
                        // High-visibility domains: always in passive DNS.
                        for n in *names {
                            self.pdns_domains
                                .push((n.parse().expect("fixed name"), 0.97, true));
                        }
                    } else {
                        // Sierra: one regional front per site, in site order.
                        for (sidx, _) in spec.sites.iter().enumerate() {
                            let Some(name) = names.get(sidx) else { break };
                            let domain: DomainName = name.parse().expect("fixed name");
                            let pool = self.site_rdata(pidx, sidx);
                            if !pool.is_empty() {
                                self.zones.set_policy(
                                    domain.clone(),
                                    RrType::A,
                                    Policy::Static(pool),
                                );
                            }
                            let pool6 = self.site_rdata_v6(pidx, sidx);
                            if !pool6.is_empty() {
                                self.zones.set_policy(
                                    domain.clone(),
                                    RrType::Aaaa,
                                    Policy::Static(pool6),
                                );
                            }
                            self.pdns_domains.push((
                                domain,
                                0.9,
                                rng.chance(self.config.passive_dns_coverage),
                            ));
                        }
                    }
                }
            }
            self.tenants.push(tenants);
        }
    }

    /// Mindsphere-style region labels.
    fn region_domain_code(spec: &ProviderSpec, site: usize) -> String {
        if spec.name == "siemens" {
            ["eu1", "us1", "cn1", "eu2"][site.min(3)].to_string()
        } else {
            spec.sites[site].code.clone()
        }
    }

    /// Install DNS answer policies for one tenant domain. Returns whether
    /// the passive-DNS sensor network observes this domain at all (§3.6's
    /// coverage limitation applies per domain).
    fn install_tenant_policy(
        &mut self,
        pidx: usize,
        home: usize,
        domain: &DomainName,
        spec: &ProviderSpec,
        rng: &mut SimRng,
        tenant_idx: u32,
    ) -> bool {
        let is_cloud = matches!(spec.sites[home].hosting, SiteHosting::Cloud { .. });
        let pr_chain = is_cloud
            && matches!(
                spec.name,
                "bosch" | "cisco" | "ptc" | "sap" | "siemens" | "oracle"
            );
        if pr_chain {
            // Cloud tenants sit behind load-balancer CNAMEs; the LB name is
            // shared by many tenants of the same site.
            let SiteHosting::Cloud { cloud, region } = &spec.sites[home].hosting else {
                unreachable!()
            };
            let k = tenant_idx % 3;
            let lb_name: DomainName = format!("lb-{k}.{}.{region}.{cloud}-elb.example", spec.name)
                .parse()
                .expect("valid lb domain");
            self.zones.set_policy(
                domain.clone(),
                RrType::Cname,
                Policy::Alias(lb_name.clone()),
            );
            if !self.zones.contains(&lb_name) {
                let pool = self.site_rdata(pidx, home);
                if !pool.is_empty() {
                    let window = (pool.len() / 4).clamp(1, 6);
                    let salt = rng.next_u64() % 10_000;
                    self.zones.set_policy(
                        lb_name.clone(),
                        RrType::A,
                        Policy::Rotating { pool, window, salt },
                    );
                }
                let pool6 = self.site_rdata_v6(pidx, home);
                if !pool6.is_empty() {
                    self.zones
                        .set_policy(lb_name.clone(), RrType::Aaaa, Policy::Static(pool6));
                }
                self.pdns_domains.push((lb_name, 0.8, true));
            }
        } else {
            let pool = self.site_rdata(pidx, home);
            if !pool.is_empty() {
                let window = (pool.len() / 8).clamp(1, 6);
                let salt = rng.next_u64() % 100_000;
                self.zones.set_policy(
                    domain.clone(),
                    RrType::A,
                    Policy::Rotating { pool, window, salt },
                );
            }
            if rng.chance(0.6) {
                let pool6 = self.site_rdata_v6(pidx, home);
                if !pool6.is_empty() {
                    self.zones
                        .set_policy(domain.clone(), RrType::Aaaa, Policy::Static(pool6));
                }
            }
        }
        let observed = rng.chance(self.config.passive_dns_coverage);
        self.pdns_domains.push((domain.clone(), 0.5, observed));
        observed
    }

    /// Google: one global MQTT front (dedicated IPs) and one HTTPS front
    /// shared with non-IoT Google services (§3.4's "two different sets").
    fn install_google_zones(&mut self, pidx: usize, names: &[&str]) {
        let mut mqtt_pool = Vec::new();
        let mut https_pool = Vec::new();
        let mut mqtt6 = Vec::new();
        for (sidx, pool) in self.site_pools[pidx].iter().enumerate() {
            for &sid in pool {
                let s = &self.servers[sid];
                if let IpAddr::V4(a) = s.ip {
                    if s.shared {
                        https_pool.push(RData::A(a));
                    } else {
                        mqtt_pool.push(RData::A(a));
                    }
                }
            }
            // Same 55% DNS exposure rule as everywhere else (the rest of
            // the v6 fleet is scan-discoverable only).
            let site6 = &self.site_pools_v6[pidx][sidx];
            let keep = (site6.len() / 2).max(1).min(site6.len());
            for &sid in site6.iter().take(keep) {
                if let IpAddr::V6(a) = self.servers[sid].ip {
                    mqtt6.push(RData::Aaaa(a));
                }
            }
        }
        let mqtt: DomainName = names[0].parse().expect("google mqtt name");
        let https: DomainName = names[1].parse().expect("google https name");
        // Google fronts its global fleet behind one name with large,
        // fast-rotating answers — which is why the paper sees almost all
        // of T2's backends in ISP traffic (Fig. 6).
        let mqtt_window = (mqtt_pool.len() / 4).max(8);
        self.zones.set_policy(
            mqtt.clone(),
            RrType::A,
            Policy::Rotating {
                pool: mqtt_pool,
                window: mqtt_window,
                salt: 17,
            },
        );
        if !mqtt6.is_empty() {
            let w6 = (mqtt6.len() / 3).max(4);
            self.zones.set_policy(
                mqtt,
                RrType::Aaaa,
                Policy::Rotating {
                    pool: mqtt6,
                    window: w6,
                    salt: 29,
                },
            );
        }
        if !https_pool.is_empty() {
            let wh = (https_pool.len() / 4).max(8);
            self.zones.set_policy(
                https,
                RrType::A,
                Policy::Rotating {
                    pool: https_pool,
                    window: wh,
                    salt: 41,
                },
            );
        }
    }

    fn build_background(&mut self) {
        let mut rng = self.rng.fork("background");
        let n_cities = self.geo.len();
        for i in 0..self.config.background_hosts {
            let ip = Ipv4Addr::from(0x5D_00_00_00u32 + rng.gen_below(1 << 24) as u32);
            if self.server_by_ip.contains_key(&IpAddr::V4(ip)) {
                continue;
            }
            let domain: DomainName = format!("www.site{i:05}.example")
                .parse()
                .expect("valid background domain");
            let mut ports = vec![PortProto::tcp(443)];
            if rng.chance(0.3) {
                ports.push(PortProto::tcp(80));
            }
            if rng.chance(0.05) {
                ports.push(PortProto::tcp(8883)); // non-IoT MQTT brokers exist
            }
            self.zones.set_policy(
                domain.clone(),
                RrType::A,
                Policy::Static(vec![RData::A(ip)]),
            );
            self.pdns_domains
                .push((domain.clone(), 0.4, rng.chance(0.9)));
            self.background.push(BackgroundHost {
                ip,
                ports,
                domain,
                city: rng.gen_below(n_cities as u64) as usize,
            });
        }

        // Non-IoT domains on Google's shared HTTPS set and on the
        // Akamai-fronted Oracle share — the fuel for §3.4's
        // shared-vs-dedicated classification.
        let google = self.providers.iter().position(|p| p.name == "google");
        if let Some(g) = google {
            let shared: Vec<RData> = self
                .servers
                .iter()
                .filter(|s| s.provider == g && s.shared)
                .filter_map(|s| match s.ip {
                    IpAddr::V4(a) => Some(RData::A(a)),
                    _ => None,
                })
                .collect();
            if !shared.is_empty() {
                for i in 0..150u32 {
                    let domain: DomainName = format!("svc{i:03}.google-web.example")
                        .parse()
                        .expect("valid google service domain");
                    let k = 1 + (i as usize % 3);
                    let picks: Vec<RData> = (0..k)
                        .map(|j| shared[(i as usize * 7 + j * 13) % shared.len()].clone())
                        .collect();
                    self.zones
                        .set_policy(domain.clone(), RrType::A, Policy::Static(picks));
                    self.pdns_domains.push((domain, 0.8, true));
                }
            }
        }
        let oracle = self.providers.iter().position(|p| p.name == "oracle");
        if let Some(o) = oracle {
            let edge: Vec<RData> = self
                .servers
                .iter()
                .filter(|s| s.provider == o && s.shared)
                .filter_map(|s| match s.ip {
                    IpAddr::V4(a) => Some(RData::A(a)),
                    _ => None,
                })
                .collect();
            if !edge.is_empty() {
                for i in 0..200u32 {
                    let domain: DomainName = format!("www.brand{i:03}.example")
                        .parse()
                        .expect("valid akamai customer domain");
                    let picks: Vec<RData> = vec![edge[i as usize % edge.len()].clone()];
                    self.zones
                        .set_policy(domain.clone(), RrType::A, Policy::Static(picks));
                    self.pdns_domains.push((domain, 0.7, true));
                }
            }
        }
    }

    fn build_hitlist(&mut self) {
        let mut rng = self.rng.fork("hitlist");
        for s in &self.servers {
            if let IpAddr::V6(a) = s.ip {
                if rng.chance(self.config.hitlist_coverage) {
                    self.hitlist.add(a);
                }
            }
        }
        // Hitlist noise: responsive hosts that are not IoT backends.
        for i in 0..64u64 {
            self.hitlist.add(Ipv6Addr::from(
                (0x2001_0db8_0bad_u128 << 80) | (i as u128 + 1),
            ));
        }
    }

    /// Simulate the global resolver activity the passive-DNS sensors see.
    fn fill_passive_dns(&mut self) {
        let mut rng = self.rng.fork("pdns");
        let continents = [
            (Continent::Europe, 0.40),
            (Continent::NorthAmerica, 0.35),
            (Continent::Asia, 0.15),
            (Continent::SouthAmerica, 0.05),
            (Continent::Oceania, 0.05),
        ];
        let weights: Vec<f64> = continents.iter().map(|c| c.1).collect();
        let (d0, d1) = self.sim_days;
        let domains = std::mem::take(&mut self.pdns_domains);
        for (domain, popularity, observed) in &domains {
            if !observed {
                continue;
            }
            for day in (d0..d1).step_by(1) {
                if !rng.chance(*popularity) {
                    continue;
                }
                let n_obs = 1 + rng.gen_below(2);
                for _ in 0..n_obs {
                    let continent = continents[rng.choose_weighted(&weights)].0;
                    let ctx = ResolutionContext {
                        client_continent: continent,
                        time: Date::from_epoch_days(day).midnight() + SimDuration::hours(12),
                        resolver_id: rng.gen_below(40),
                    };
                    self.record_chain(domain, &ctx, 0);
                }
            }
        }
        self.pdns_domains = domains;
    }

    /// Record what a resolver (and thus the passive-DNS sensor next to it)
    /// observes when resolving `domain`: the CNAME chain and the terminal
    /// address records, each under its own owner name — exactly how DNSDB
    /// stores chains.
    fn record_chain(&mut self, domain: &DomainName, ctx: &ResolutionContext, depth: usize) {
        if depth > 4 {
            return;
        }
        for rrtype in [RrType::A, RrType::Aaaa] {
            let answers = self.zones.query(domain, rrtype, ctx);
            for r in answers {
                match &r {
                    RData::Cname(target) => {
                        self.passive_dns
                            .observe(domain.clone(), r.clone(), ctx.time);
                        let t = target.clone();
                        self.record_chain(&t, ctx, depth + 1);
                        break; // chain recorded once, not per rrtype
                    }
                    _ => {
                        self.passive_dns
                            .observe(domain.clone(), r.clone(), ctx.time);
                    }
                }
            }
        }
    }

    fn build_published(&mut self) {
        let idx = |n: &str| self.providers.iter().position(|p| p.name == n);
        if let Some(c) = idx("cisco") {
            self.published.cisco_ips = self
                .servers
                .iter()
                .filter(|s| s.provider == c && s.ip.is_ipv4())
                .map(|s| s.ip)
                .collect();
        }
        if let Some(si) = idx("siemens") {
            self.published.siemens_ips = self
                .servers
                .iter()
                .filter(|s| s.provider == si && s.ip.is_ipv4())
                .map(|s| s.ip)
                .collect();
        }
        if let Some(m) = idx("microsoft") {
            // Microsoft publishes a *subset* of its space as prefixes
            // (>12k addresses at full scale; most published addresses host
            // nothing discoverable). The published ranges naturally include
            // the blocks where the undocumented (DNS-less) gateways live —
            // which is how the paper could tell its methodology missed a
            // handful of *active* published IPs.
            let hidden_blocks: Vec<u32> = self
                .servers
                .iter()
                .filter(|s| s.provider == m && !s.documented)
                .filter_map(|s| match s.ip {
                    IpAddr::V4(a) => Some(u32::from(a) >> 8),
                    _ => None,
                })
                .collect();
            let mut blocks: Vec<u32> = self
                .servers
                .iter()
                .filter(|s| s.provider == m)
                .filter_map(|s| match s.ip {
                    IpAddr::V4(a) => Some(u32::from(a) >> 8),
                    _ => None,
                })
                .collect();
            blocks.sort_unstable();
            blocks.dedup();
            let take = (blocks.len() / 6).max(2);
            let mut chosen: Vec<u32> = hidden_blocks;
            chosen.sort_unstable();
            chosen.dedup();
            for b in blocks {
                if chosen.len() >= take.max(chosen.len()) && chosen.len() >= take {
                    break;
                }
                if !chosen.contains(&b) {
                    chosen.push(b);
                }
            }
            self.published.microsoft_prefixes = chosen
                .into_iter()
                .map(|b| Ipv4Prefix::new(Ipv4Addr::from(b << 8), 24))
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(&WorldConfig::small(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.servers.len(), b.servers.len());
        for (x, y) in a.servers.iter().zip(b.servers.iter()) {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.provider, y.provider);
            assert_eq!(x.born_day, y.born_day);
        }
        assert_eq!(a.passive_dns.len(), b.passive_dns.len());
        assert_eq!(a.zones.len(), b.zones.len());
    }

    #[test]
    fn slash24_counts_track_table1_ratios() {
        let w = world();
        let count24 = |name: &str| {
            let p = w.provider_index(name);
            let mut s24: HashSet<u32> = HashSet::new();
            for s in &w.servers {
                if s.provider == p {
                    if let IpAddr::V4(a) = s.ip {
                        s24.insert(u32::from(a) >> 8);
                    }
                }
            }
            s24.len()
        };
        // At ip_scale 16: Amazon ≈ 9000/16, SAP ≈ 2929/16, and the small
        // providers are clamped at one /24 per site.
        let amazon = count24("amazon");
        assert!((450..650).contains(&amazon), "amazon {amazon}");
        let sap = count24("sap");
        assert!((140..220).contains(&sap), "sap {sap}");
        assert!(count24("amazon") > count24("microsoft"));
        assert!(count24("microsoft") > count24("fujitsu"));
    }

    #[test]
    fn every_server_has_bgp_origin() {
        let w = world();
        for s in &w.servers {
            let origin = w.bgp.origin(s.ip);
            assert!(
                origin.is_some(),
                "no BGP origin for {} ({:?})",
                s.ip,
                s.provider
            );
            assert_eq!(origin.unwrap().asn, s.asn, "asn mismatch for {}", s.ip);
        }
    }

    #[test]
    fn di_providers_announce_from_own_asns() {
        let w = world();
        let microsoft = w.provider_index("microsoft");
        for s in w.servers.iter().filter(|s| s.provider == microsoft) {
            assert_eq!(s.asn, Asn(8068));
        }
        let bosch = w.provider_index("bosch");
        for s in w.servers.iter().filter(|s| s.provider == bosch) {
            assert_eq!(s.asn, Asn(8987), "bosch is on AWS eu-central-1");
        }
    }

    #[test]
    fn amazon_spans_four_asns() {
        let w = world();
        let amazon = w.provider_index("amazon");
        let asns: HashSet<Asn> = w
            .servers
            .iter()
            .filter(|s| s.provider == amazon)
            .map(|s| s.asn)
            .collect();
        assert_eq!(asns.len(), 4, "{asns:?}");
    }

    #[test]
    fn tenant_domains_resolve_to_provider_ips() {
        let w = world();
        let m = w.provider_index("microsoft");
        let ctx = ResolutionContext::simple(Continent::Europe, Date::new(2022, 3, 1).midnight());
        let mut resolved_any = false;
        for t in w.tenants[m].iter().take(20) {
            for ip in iotmap_dns::resolve(&w.zones, &t.domain, RrType::A, &ctx) {
                resolved_any = true;
                let sid = w.server_by_ip.get(&ip).copied().expect("known server IP");
                assert_eq!(w.servers[sid].provider, m);
            }
        }
        assert!(resolved_any);
    }

    #[test]
    fn pr_tenants_resolve_through_cnames() {
        let w = world();
        let b = w.provider_index("bosch");
        let ctx = ResolutionContext::simple(Continent::Europe, Date::new(2022, 3, 1).midnight());
        let t = &w.tenants[b][0];
        // Direct query yields a CNAME...
        let direct = w.zones.query(&t.domain, RrType::A, &ctx);
        assert!(
            matches!(direct.first(), Some(RData::Cname(_))),
            "{direct:?}"
        );
        // ...and full resolution lands on Bosch's AWS servers.
        let ips = iotmap_dns::resolve(&w.zones, &t.domain, RrType::A, &ctx);
        assert!(!ips.is_empty());
        for ip in ips {
            let sid = w.server_by_ip[&ip];
            assert_eq!(w.servers[sid].provider, b);
        }
    }

    #[test]
    fn google_has_dedicated_and_shared_sets() {
        let w = world();
        let g = w.provider_index("google");
        let dedicated = w
            .servers
            .iter()
            .filter(|s| s.provider == g && !s.shared && s.ip.is_ipv4())
            .count();
        let shared = w
            .servers
            .iter()
            .filter(|s| s.provider == g && s.shared && s.ip.is_ipv4())
            .count();
        assert!(dedicated > 0 && shared > 0);
        // The shared set carries non-IoT domains in passive DNS.
        let week = w.config.study_period;
        let shared_ip = w
            .servers
            .iter()
            .find(|s| s.provider == g && s.shared && s.ip.is_ipv4())
            .unwrap()
            .ip;
        let non_iot = w
            .passive_dns
            .domains_for_ip(shared_ip, week)
            .filter(|e| e.owner.as_str().contains("google-web"))
            .count();
        assert!(non_iot > 0, "shared Google IP should carry web domains");
    }

    #[test]
    fn passive_dns_is_populated_for_study_week() {
        let w = world();
        let week = w.config.study_period;
        let q = iotmap_dregex::query::DnsdbQuery::flexible(r"(.+\.|^)(azure-devices\.net\.$)/A")
            .unwrap();
        let hits = w.passive_dns.search(&q, week).count();
        assert!(hits > 50, "azure-devices hits {hits}");
    }

    #[test]
    fn hitlist_covers_most_v6_servers() {
        let w = world();
        let v6_total = w.servers.iter().filter(|s| s.ip.is_ipv6()).count();
        let covered = w
            .servers
            .iter()
            .filter(|s| match s.ip {
                IpAddr::V6(a) => w.hitlist.contains(a),
                _ => false,
            })
            .count();
        assert!(v6_total > 20, "v6 servers {v6_total}");
        let frac = covered as f64 / v6_total as f64;
        assert!((0.6..=0.95).contains(&frac), "coverage {frac}");
    }

    #[test]
    fn microsoft_publishes_prefix_subset() {
        let w = world();
        assert!(!w.published.microsoft_prefixes.is_empty());
        let m = w.provider_index("microsoft");
        // Published prefixes cover some but not all Microsoft servers.
        let inside = w
            .servers
            .iter()
            .filter(|s| s.provider == m)
            .filter(|s| match s.ip {
                IpAddr::V4(a) => w.published.microsoft_prefixes.iter().any(|p| p.contains(a)),
                _ => false,
            })
            .count();
        let total = w
            .servers
            .iter()
            .filter(|s| s.provider == m && s.ip.is_ipv4())
            .count();
        assert!(
            inside > 0 && inside < total,
            "inside {inside} total {total}"
        );
        // Cisco and Siemens publish everything.
        assert!(!w.published.cisco_ips.is_empty());
        assert!(!w.published.siemens_ips.is_empty());
    }

    #[test]
    fn churn_only_for_cloudy_providers() {
        let w = world();
        let (d0, d1) = w.sim_days;
        let m = w.provider_index("microsoft");
        for s in w.servers.iter().filter(|s| s.provider == m) {
            assert_eq!((s.born_day, s.died_day), (d0, d1), "microsoft is stable");
        }
        let amazon = w.provider_index("amazon");
        let ephemeral = w
            .servers
            .iter()
            .filter(|s| s.provider == amazon && (s.born_day, s.died_day) != (d0, d1))
            .count();
        assert!(ephemeral > 0, "amazon should churn");
    }

    #[test]
    fn undocumented_servers_only_microsoft() {
        let w = world();
        let m = w.provider_index("microsoft");
        for s in &w.servers {
            if !s.documented {
                assert_eq!(s.provider, m);
            }
        }
        let hidden = w.servers.iter().filter(|s| !s.documented).count();
        assert!(hidden > 0, "microsoft should have undocumented gateways");
    }
}
