//! Public cloud providers and CDNs.
//!
//! Six of the sixteen IoT backends lease their Internet-facing gateways
//! from public clouds (§4.2): Bosch, Cisco and Sierra Wireless run on AWS;
//! PTC on AWS + Azure; SAP and Siemens on AWS + Azure + Alibaba; Oracle
//! extends its own infrastructure with Akamai. Cloud-hosted gateways are
//! announced by the *cloud's* AS — that is exactly what the paper's DI/PR
//! classification keys on — and live inside the cloud's regional address
//! blocks, which is what ties the December 2021 us-east-1 outage to
//! specific backend IPs.

use crate::geodb::{CityId, GeoDb};
use iotmap_nettypes::{Asn, Ipv4Prefix, Ipv6Prefix};

/// One cloud region: a site with address blocks.
#[derive(Debug, Clone)]
pub struct CloudRegion {
    /// Region code as it appears in domain names (`us-east-1`).
    pub code: String,
    /// Metro the region sits in.
    pub city: CityId,
    /// IPv4 block the region allocates gateway addresses from.
    pub v4_block: Ipv4Prefix,
    /// IPv6 block, if the region offers IPv6.
    pub v6_block: Option<Ipv6Prefix>,
}

/// A public cloud / CDN operator.
#[derive(Debug, Clone)]
pub struct CloudProvider {
    /// Operator name (`"aws"`, `"azure"`, `"alicloud"`, `"akamai"`).
    pub name: &'static str,
    /// Organization name as it would appear in WHOIS.
    pub org: &'static str,
    /// The AS announcing all of this cloud's blocks.
    pub asn: Asn,
    pub regions: Vec<CloudRegion>,
}

impl CloudProvider {
    /// Find a region by code.
    pub fn region(&self, code: &str) -> &CloudRegion {
        self.regions
            .iter()
            .find(|r| r.code == code)
            .unwrap_or_else(|| panic!("{}: unknown region {code:?}", self.name))
    }
}

/// The catalog of cloud operators in the world.
#[derive(Debug, Clone)]
pub struct CloudCatalog {
    pub clouds: Vec<CloudProvider>,
}

impl CloudCatalog {
    /// Find a cloud by name.
    pub fn cloud(&self, name: &str) -> &CloudProvider {
        self.clouds
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("unknown cloud {name:?}"))
    }

    /// The standard catalog. Address plan (all synthetic, documentation
    /// ranges deliberately *not* used so prefixes look realistic):
    ///
    /// | operator | AS(es) | IPv4 super-block |
    /// |---|---|---|
    /// | AWS | AS16509 + regional ASes | 52.0.0.0/8, one /13 per region |
    /// | Azure | AS8075 | 40.0.0.0/8, one /13 per region |
    /// | Alibaba Cloud | AS45102 | 47.0.0.0/8, one /14 per region |
    /// | Akamai | AS20940 | 23.0.0.0/12, one /16 per region |
    ///
    /// AWS announces from several regional ASes (Amazon IoT's Table 1 row
    /// lists 4 ASes): us-east-1 from AS14618, other American regions from
    /// AS16509, European regions from AS8987, Asia-Pacific/ME/Africa from
    /// AS7224. [`CloudCatalog::asn_for_region`] encodes that mapping.
    pub fn standard(geo: &GeoDb) -> Self {
        let mut clouds = Vec::new();

        // AWS: 18 regions in 15 countries (drives Amazon IoT's Table 1 row).
        let aws_regions = [
            ("us-east-1", "Ashburn", true),
            ("us-east-2", "Columbus", false),
            ("us-west-1", "San Jose", false),
            ("us-west-2", "Portland", true),
            ("ca-central-1", "Montreal", false),
            ("sa-east-1", "Sao Paulo", false),
            ("eu-west-1", "Dublin", true),
            ("eu-west-2", "London", false),
            ("eu-west-3", "Paris", false),
            ("eu-central-1", "Frankfurt", true),
            ("eu-north-1", "Stockholm", false),
            ("eu-south-1", "Milan", false),
            ("ap-southeast-1", "Singapore", true),
            ("ap-southeast-2", "Sydney", false),
            ("ap-northeast-1", "Tokyo", true),
            ("ap-south-1", "Mumbai", false),
            ("me-south-1", "Dubai", false),
            ("af-south-1", "Cape Town", false),
        ];
        clouds.push(Self::build_cloud(
            geo,
            "aws",
            "Amazon Web Services",
            Asn(16509),
            0x34_00_00_00, // 52.0.0.0
            13,
            0x2a05,
            &aws_regions,
        ));

        // Azure: the regions the PR backends lease (Microsoft's own IoT Hub
        // sites are announced from Microsoft's DI AS, not listed here).
        let azure_regions = [
            ("eastus", "Ashburn", false),
            ("centralus", "Dallas", false),
            ("westus2", "Portland", false),
            ("westeurope", "Amsterdam", false),
            ("northeurope", "Dublin", false),
            ("germanywestcentral", "Frankfurt", false),
            ("southeastasia", "Singapore", false),
            ("japaneast", "Tokyo", false),
        ];
        clouds.push(Self::build_cloud(
            geo,
            "azure",
            "Microsoft Azure",
            Asn(8075),
            0x28_00_00_00, // 40.0.0.0
            13,
            0x2a06,
            &azure_regions,
        ));

        // Alibaba Cloud (leased by SAP and Siemens for their Chinese sites;
        // Alibaba IoT itself is DI on Alibaba's own AS).
        let ali_regions = [
            ("cn-shanghai", "Shanghai", true),
            ("cn-beijing", "Beijing", false),
            ("cn-hangzhou", "Hangzhou", true),
            ("cn-shenzhen", "Shenzhen", false),
            ("eu-central-1", "Frankfurt", false),
            ("us-west-1", "San Jose", false),
        ];
        clouds.push(Self::build_cloud(
            geo,
            "alicloud",
            "Alibaba Cloud",
            Asn(45102),
            0x2f_00_00_00, // 47.0.0.0
            14,
            0x2a07,
            &ali_regions,
        ));

        // Akamai edge (fronts part of Oracle IoT).
        let akamai_regions = [
            ("edge-fra", "Frankfurt", false),
            ("edge-ams", "Amsterdam", false),
            ("edge-lon", "London", false),
            ("edge-iad", "Ashburn", false),
            ("edge-ord", "Chicago", false),
            ("edge-sjc", "San Jose", false),
            ("edge-gru", "Sao Paulo", false),
            ("edge-sin", "Singapore", false),
            ("edge-hnd", "Tokyo", false),
            ("edge-syd", "Sydney", false),
            ("edge-jnb", "Johannesburg", false),
            ("edge-bom", "Mumbai", false),
        ];
        clouds.push(Self::build_cloud(
            geo,
            "akamai",
            "Akamai Technologies",
            Asn(20940),
            0x17_00_00_00, // 23.0.0.0
            16,
            0x2a08,
            &akamai_regions,
        ));

        CloudCatalog { clouds }
    }

    #[allow(clippy::too_many_arguments)] // catalog wiring, called 4 times
    fn build_cloud(
        geo: &GeoDb,
        name: &'static str,
        org: &'static str,
        asn: Asn,
        v4_base: u32,
        region_prefix_len: u8,
        v6_hi: u16,
        regions: &[(&str, &str, bool)],
    ) -> CloudProvider {
        let step = 1u32 << (32 - region_prefix_len);
        let regions = regions
            .iter()
            .enumerate()
            .map(|(i, (code, city, v6))| CloudRegion {
                code: code.to_string(),
                city: geo.id_of(city),
                v4_block: Ipv4Prefix::new((v4_base + (i as u32) * step).into(), region_prefix_len),
                v6_block: v6.then(|| {
                    let addr = ((v6_hi as u128) << 112) | ((i as u128) << 80);
                    Ipv6Prefix::new(addr.into(), 48)
                }),
            })
            .collect();
        CloudProvider {
            name,
            org,
            asn,
            regions,
        }
    }

    /// The AS a given cloud region announces from. For AWS this spreads
    /// regions over Amazon's regional ASes; other clouds use a single AS.
    pub fn asn_for_region(cloud: &CloudProvider, code: &str) -> Asn {
        if cloud.name != "aws" {
            return cloud.asn;
        }
        if code == "us-east-1" {
            Asn(14618)
        } else if code.starts_with("eu-") {
            Asn(8987)
        } else if code.starts_with("ap-") || code.starts_with("me-") || code.starts_with("af-") {
            Asn(7224)
        } else {
            Asn(16509) // remaining Americas regions
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> CloudCatalog {
        CloudCatalog::standard(&GeoDb::standard())
    }

    #[test]
    fn aws_matches_amazon_table1_row() {
        let geo = GeoDb::standard();
        let aws = catalog().cloud("aws").clone();
        assert_eq!(aws.regions.len(), 18, "Amazon IoT: 18 locations");
        let countries: std::collections::BTreeSet<_> = aws
            .regions
            .iter()
            .map(|r| geo.location(r.city).country)
            .collect();
        assert_eq!(countries.len(), 15, "Amazon IoT: 15 countries");
    }

    #[test]
    fn region_blocks_are_disjoint() {
        let cat = catalog();
        let mut blocks = Vec::new();
        for cloud in &cat.clouds {
            for r in &cloud.regions {
                blocks.push(r.v4_block);
            }
        }
        for i in 0..blocks.len() {
            for j in 0..blocks.len() {
                if i != j {
                    assert!(
                        !blocks[i].covers(&blocks[j]),
                        "{} overlaps {}",
                        blocks[i],
                        blocks[j]
                    );
                }
            }
        }
    }

    #[test]
    fn region_lookup() {
        let cat = catalog();
        let aws = cat.cloud("aws");
        let use1 = aws.region("us-east-1");
        assert_eq!(use1.v4_block.to_string(), "52.0.0.0/13");
        assert!(use1.v6_block.is_some());
        assert_eq!(CloudCatalog::asn_for_region(aws, "us-east-1"), Asn(14618));
        assert_eq!(CloudCatalog::asn_for_region(aws, "eu-central-1"), Asn(8987));
        assert_eq!(CloudCatalog::asn_for_region(aws, "ap-south-1"), Asn(7224));
        assert_eq!(CloudCatalog::asn_for_region(aws, "us-west-2"), Asn(16509));
    }

    #[test]
    #[should_panic(expected = "unknown region")]
    fn unknown_region_panics() {
        let cat = catalog();
        cat.cloud("aws").region("mars-north-1");
    }

    #[test]
    fn distinct_asns() {
        let cat = catalog();
        let asns: std::collections::BTreeSet<_> = cat.clouds.iter().map(|c| c.asn).collect();
        assert_eq!(asns.len(), cat.clouds.len());
    }
}
