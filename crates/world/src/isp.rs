//! The residential ISP: subscriber lines, their IoT devices, and scanners.
//!
//! §5.1's vantage point is "a major European ISP offering residential
//! Internet IPv4 and IPv6 connectivity to more than fifteen million
//! broadband subscriber lines". The world scales that population down by
//! `config.scale` while keeping the *per-line* behaviour realistic: device
//! ownership is concentrated (most lines have no IoT, IoT lines mostly
//! have one or two devices), provider popularity is top-heavy, and a tiny
//! sub-population of lines hosts Internet-wide scanners (§5.2).

use crate::config::WorldConfig;
use crate::providers::{ProviderSpec, SiteHosting};
use iotmap_nettypes::{Continent, SimRng};

/// What kind of scanner a line hosts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScannerKind {
    /// Scans (essentially) the full IPv4 space: touches every backend.
    Full,
    /// Scans a fraction of the space.
    Partial(f64),
}

/// One IoT device on a subscriber line.
#[derive(Debug, Clone)]
pub struct Device {
    /// Index into the provider catalog.
    pub provider: usize,
    /// Tenant index within the provider (`u32::MAX` for providers whose
    /// domain scheme has no tenant part).
    pub tenant: u32,
    /// The provider site the device's backend lives at (its tenant's home
    /// region).
    pub home_site: usize,
    /// Member of the provider's heavy-traffic class (Bosch AMQP bulk).
    pub heavy: bool,
    /// Device and backend speak IPv6.
    pub uses_v6: bool,
    /// EU-homed device that additionally syncs with a US aggregation
    /// endpoint about once a week (drives §5.7's region crossing).
    pub secondary_us: bool,
    /// Multiplier on the device's daily volume (US-homed cloud services
    /// are byte-heavier, which is what pushes §5.7's traffic share toward
    /// the US while line counts stay EU-dominated).
    pub volume_factor: f64,
}

/// One broadband subscriber line.
#[derive(Debug, Clone)]
pub struct SubscriberLine {
    pub id: u64,
    pub devices: Vec<Device>,
    pub scanner: Option<ScannerKind>,
    pub v6_capable: bool,
}

/// The full ISP model.
#[derive(Debug, Clone)]
pub struct IspModel {
    pub lines: Vec<SubscriberLine>,
}

/// Tenant home-site lists per provider, split by continent, as produced by
/// the world builder: `per_continent[continent ordinal]` holds tenant
/// indices homed there.
pub struct TenantHomes {
    /// `(tenant index, home site)` pairs.
    pub tenants: Vec<(u32, usize)>,
}

impl IspModel {
    /// Generate the subscriber-line population.
    ///
    /// `tenant_homes[p]` lists the provider's tenants and their home
    /// sites; `site_continent[p][s]` gives each site's continent.
    pub fn generate(
        config: &WorldConfig,
        providers: &[ProviderSpec],
        tenant_homes: &[TenantHomes],
        site_continent: &[Vec<Continent>],
        rng: &mut SimRng,
    ) -> IspModel {
        let n_lines = config.line_count();
        let popularity: Vec<f64> = providers.iter().map(|p| p.profile.popularity).collect();

        // Every line derives its randomness from a pure `fork_idx` of the
        // parent RNG, so lines are independent: shard them and merge in id
        // order for a population byte-identical to the serial loop.
        let rng = &*rng;
        let ids: Vec<u64> = (0..n_lines).collect();
        let lines = iotmap_par::shard_map(&ids, |_i, &id| {
            let mut line_rng = rng.fork_idx(id);
            let mut devices = Vec::new();
            // ~20% of lines own IoT devices; ownership within those lines
            // is 1-to-few with a thin tail.
            if line_rng.chance(0.20) {
                let count = match line_rng.f64() {
                    x if x < 0.60 => 1,
                    x if x < 0.85 => 2,
                    x if x < 0.94 => 3,
                    x if x < 0.985 => 4,
                    _ => 5 + line_rng.gen_below(3) as usize,
                };
                // Households lean one way: most of a line's devices share
                // a regional affinity (the paper's Fig. 13 shows only a
                // modest EU+US mix).
                let line_want = match line_rng.f64() {
                    x if x < 0.66 => Continent::Europe,
                    x if x < 0.97 => Continent::NorthAmerica,
                    _ => Continent::Asia,
                };
                for _ in 0..count {
                    devices.push(Self::make_device(
                        providers,
                        &popularity,
                        tenant_homes,
                        site_continent,
                        line_want,
                        &mut line_rng,
                    ));
                }
            }
            // Scanners (§5.2): a tiny sub-population. Full scanners are
            // rarer than partial ones.
            let scanner = if line_rng.chance(1.0 / 50_000.0) {
                Some(ScannerKind::Full)
            } else if line_rng.chance(1.0 / 12_000.0) {
                Some(ScannerKind::Partial(line_rng.f64_range(0.01, 0.3)))
            } else {
                None
            };
            let v6_capable = line_rng.chance(0.35);
            SubscriberLine {
                id,
                devices,
                scanner,
                v6_capable,
            }
        });
        IspModel { lines }
    }

    fn make_device(
        providers: &[ProviderSpec],
        popularity: &[f64],
        tenant_homes: &[TenantHomes],
        site_continent: &[Vec<Continent>],
        line_want: Continent,
        rng: &mut SimRng,
    ) -> Device {
        let provider = rng.choose_weighted(popularity);
        let spec = &providers[provider];

        // Desired backend continent: mostly the household's affinity,
        // occasionally an independent draw.
        let want = if rng.chance(0.92) {
            line_want
        } else {
            match rng.f64() {
                x if x < 0.60 => Continent::Europe,
                x if x < 0.97 => Continent::NorthAmerica,
                _ => Continent::Asia,
            }
        };

        // Pick a tenant homed on the desired continent when the provider
        // has one; otherwise fall back to any tenant / any site.
        let homes = &tenant_homes[provider];
        let continents = &site_continent[provider];
        let (tenant, home_site) = if homes.tenants.is_empty() {
            // Tenant-less domain scheme: home is the nearest site of the
            // desired continent, else the first site.
            let site = continents
                .iter()
                .position(|c| *c == want)
                .or_else(|| continents.iter().position(|c| *c == Continent::Europe))
                .unwrap_or(0);
            (u32::MAX, site)
        } else {
            let matching: Vec<&(u32, usize)> = homes
                .tenants
                .iter()
                .filter(|(_, s)| continents[*s] == want)
                .collect();
            let pick = if matching.is_empty() {
                rng.choose(&homes.tenants)
            } else {
                *rng.choose(&matching)
            };
            (pick.0, pick.1)
        };

        let heavy = spec.profile.heavy.is_some_and(|h| rng.chance(h.fraction));
        let uses_v6 = spec.has_ipv6() && rng.chance(0.3);
        // EU-homed devices occasionally talk to a US aggregation point.
        let secondary_us = continents[home_site] == Continent::Europe
            && spec
                .sites
                .iter()
                .any(|s| site_of_continent(s, Continent::NorthAmerica))
            && rng.chance(0.04);

        let volume_factor = if continents[home_site] == Continent::NorthAmerica {
            2.6
        } else {
            1.0
        };
        Device {
            provider,
            tenant,
            home_site,
            heavy,
            uses_v6,
            secondary_us,
            volume_factor,
        }
    }

    /// Number of lines with at least one device.
    pub fn iot_line_count(&self) -> usize {
        self.lines.iter().filter(|l| !l.devices.is_empty()).count()
    }

    /// Number of scanner-hosting lines.
    pub fn scanner_count(&self) -> usize {
        self.lines.iter().filter(|l| l.scanner.is_some()).count()
    }
}

/// Does a site sit on the given continent? (Placeholder continent check
/// via the city name is resolved by the builder; here we only need US
/// presence, which the site lists encode via cloud regions or city names.)
fn site_of_continent(site: &crate::providers::SiteSpec, c: Continent) -> bool {
    // The builder passes exact continents through `site_continent`; this
    // helper is a coarse filter used only for the secondary-US flag.
    match c {
        Continent::NorthAmerica => {
            matches!(&site.hosting, SiteHosting::Cloud { region, .. } if region.starts_with("us"))
                || site.code.contains("us-")
                || matches!(
                    site.city,
                    "Ashburn"
                        | "Columbus"
                        | "Dallas"
                        | "Portland"
                        | "San Jose"
                        | "Chicago"
                        | "Atlanta"
                        | "Phoenix"
                        | "Montreal"
                        | "Toronto"
                )
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::catalog;

    fn setup() -> (
        WorldConfig,
        Vec<ProviderSpec>,
        Vec<TenantHomes>,
        Vec<Vec<Continent>>,
    ) {
        let config = WorldConfig::small(7);
        let providers = catalog();
        // Synthesize tenant homes: 10 tenants per provider spread over its
        // sites; continents faked as EU for even sites, US for odd.
        let tenant_homes: Vec<TenantHomes> = providers
            .iter()
            .map(|p| TenantHomes {
                tenants: if p.tenants == 0 {
                    Vec::new()
                } else {
                    (0..10u32)
                        .map(|t| (t, t as usize % p.sites.len()))
                        .collect()
                },
            })
            .collect();
        let site_continent: Vec<Vec<Continent>> = providers
            .iter()
            .map(|p| {
                (0..p.sites.len())
                    .map(|s| {
                        if s % 2 == 0 {
                            Continent::Europe
                        } else {
                            Continent::NorthAmerica
                        }
                    })
                    .collect()
            })
            .collect();
        (config, providers, tenant_homes, site_continent)
    }

    #[test]
    fn population_shape() {
        let (config, providers, homes, conts) = setup();
        let mut rng = SimRng::new(config.seed);
        let isp = IspModel::generate(&config, &providers, &homes, &conts, &mut rng);
        assert_eq!(isp.lines.len(), 5000);
        let iot = isp.iot_line_count();
        // ~20% of lines have IoT.
        assert!((800..1200).contains(&iot), "iot lines {iot}");
        // Scanners are rare but present at this scale.
        let scanners = isp.scanner_count();
        assert!(scanners < 20, "scanners {scanners}");
    }

    #[test]
    fn deterministic_generation() {
        let (config, providers, homes, conts) = setup();
        let gen = || {
            let mut rng = SimRng::new(config.seed);
            IspModel::generate(&config, &providers, &homes, &conts, &mut rng)
        };
        let a = gen();
        let b = gen();
        assert_eq!(a.lines.len(), b.lines.len());
        for (x, y) in a.lines.iter().zip(b.lines.iter()) {
            assert_eq!(x.devices.len(), y.devices.len());
            assert_eq!(x.scanner.is_some(), y.scanner.is_some());
        }
    }

    #[test]
    fn provider_popularity_is_top_heavy() {
        let (config, providers, homes, conts) = setup();
        let mut rng = SimRng::new(config.seed);
        let isp = IspModel::generate(&config, &providers, &homes, &conts, &mut rng);
        let mut counts = vec![0usize; providers.len()];
        for l in &isp.lines {
            for d in &l.devices {
                counts[d.provider] += 1;
            }
        }
        let amazon = providers.iter().position(|p| p.name == "amazon").unwrap();
        let baidu = providers.iter().position(|p| p.name == "baidu").unwrap();
        assert!(
            counts[amazon] > 50 * counts[baidu].max(1) / 10,
            "amazon {} baidu {}",
            counts[amazon],
            counts[baidu]
        );
    }

    #[test]
    fn devices_of_tenantless_providers_have_sentinel_tenant() {
        let (config, providers, homes, conts) = setup();
        let mut rng = SimRng::new(config.seed);
        let isp = IspModel::generate(&config, &providers, &homes, &conts, &mut rng);
        for l in &isp.lines {
            for d in &l.devices {
                if providers[d.provider].tenants == 0 {
                    assert_eq!(d.tenant, u32::MAX);
                } else {
                    assert!(d.tenant < 10);
                }
                assert!(d.home_site < providers[d.provider].sites.len());
            }
        }
    }
}
