//! Running the measurement instruments against the world.
//!
//! The discovery pipeline consumes *datasets* (daily Censys snapshots,
//! ZGrab banner grabs); this module runs the instruments that produce
//! them, exactly as the paper's authors ran Censys queries and their own
//! ZGrab2 campaign (§3.3).

use crate::build::World;
use iotmap_faults::FaultPlan;
use iotmap_nettypes::{SimDuration, SimRng, StudyPeriod};
use iotmap_scan::hitlist::iot_probe_ports;
use iotmap_scan::{CensysService, CensysSnapshot, Zgrab2Scanner, ZgrabRecord};

/// Scan datasets covering one study period.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectedScans {
    /// One snapshot per study day.
    pub censys: Vec<CensysSnapshot>,
    /// The IPv6 hitlist campaign's banner grabs.
    pub zgrab_v6: Vec<ZgrabRecord>,
}

impl World {
    /// Run the scanning instruments over a study period.
    pub fn collect_scan_data(&self, period: StudyPeriod) -> CollectedScans {
        self.collect_scan_data_with(period, &FaultPlan::none())
    }

    /// [`World::collect_scan_data`] under a fault plan: the daily Censys
    /// sweeps suffer the plan's gaps and truncation, and the ZGrab
    /// campaign its timeouts and partial banners. An inactive plan takes
    /// the exact unfaulted path.
    pub fn collect_scan_data_with(
        &self,
        period: StudyPeriod,
        faults: &FaultPlan,
    ) -> CollectedScans {
        let _span = iotmap_obs::span!("world.collect_scan_data");
        let censys = {
            let _s = iotmap_obs::span!("world.censys_sweeps");
            let svc = CensysService::new();
            // Each day's sweep only reads the world through its dated view,
            // so the days shard independently; index-ordered merge keeps
            // the snapshot vector identical to the serial loop. (The
            // per-host shard inside `daily_sweep_with` runs inline on
            // worker threads — days are the outer unit of parallelism.)
            let days: Vec<_> = period.days().collect();
            iotmap_par::shard_map(&days, |_i, date| {
                let view = self.view_on(*date);
                svc.daily_sweep_with(&view, *date, faults.seed, &faults.censys)
            })
        };
        // The IPv6 campaign runs from a European server early in the
        // study window (§3.3).
        let zgrab_v6 = {
            let _s = iotmap_obs::span!("world.zgrab_campaign");
            let mut scanner = Zgrab2Scanner::new(iot_probe_ports());
            let mut rng = SimRng::new(self.config.seed).fork("zgrab-campaign");
            let first_day = period.start.date();
            let view = self.view_on(first_day);
            scanner.scan_with(
                &view,
                &self.hitlist,
                period.start + SimDuration::hours(3),
                &mut rng,
                faults.seed,
                &faults.zgrab,
            )
        };
        CollectedScans { censys, zgrab_v6 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    #[test]
    fn collects_daily_snapshots_and_v6_grabs() {
        let w = World::generate(&WorldConfig::small(42));
        let data = w.collect_scan_data(w.config.study_period);
        assert_eq!(data.censys.len(), 7);
        assert!(!data.censys[0].records.is_empty());
        assert!(
            !data.zgrab_v6.is_empty(),
            "v6 backends exist and are on the hitlist"
        );
        // All grabbed IPs come from the hitlist.
        for r in &data.zgrab_v6 {
            assert!(w.hitlist.contains(r.ip));
        }
    }
}
