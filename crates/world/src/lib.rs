//! # iotmap-world — the synthetic Internet
//!
//! Every data source the paper consumes is proprietary (Censys, DNSDB, a
//! 15M-line ISP's NetFlow) or *is* the Internet itself. This crate builds a
//! deterministic replacement: a ground-truth world containing the sixteen
//! IoT backend providers of Table 1 with their real-world structure —
//! regions, ASes, address blocks, domain naming schemes, TLS behaviour,
//! DNS policies, churn — plus the public clouds they lease from, a
//! RouteViews-style BGP table, a residential ISP with subscriber lines and
//! IoT devices, scanners, blocklists, BGP incidents, and the December 2021
//! AWS us-east-1 outage.
//!
//! The measurement pipeline (`iotmap-core`, `iotmap-traffic`) never reads
//! this crate's ground truth. It sees only the artifacts a real measurement
//! study would see: certificate snapshots, passive-DNS entries, DNS
//! answers, flow records. Ground truth is used exclusively by tests and by
//! the experiment harness to evaluate the pipeline's accuracy — the same
//! separation the paper has between "the Internet" and "our methodology".
//!
//! Everything is generated from a [`WorldConfig`] `(seed, scale)` pair and
//! is bit-for-bit reproducible.

pub mod build;
pub mod clouds;
pub mod collect;
pub mod config;
pub mod events;
pub mod geodb;
pub mod isp;
pub mod providers;
pub mod server;
pub mod traffic;
pub mod view;

pub use build::World;
pub use clouds::{CloudCatalog, CloudProvider, CloudRegion};
pub use collect::CollectedScans;
pub use config::WorldConfig;
pub use events::{
    BgpStreamEvent, BgpStreamEventKind, BlocklistHit, CompiledTimeline, EventTimeline, Events,
    OutageEvent, ScheduledEvent,
};
pub use geodb::GeoDb;
pub use iotmap_nettypes::bgp::{BgpOrigin, BgpTable};
pub use isp::{Device, IspModel, SubscriberLine};
pub use providers::{DeploymentStrategy, ProviderSpec, TrafficProfile, PROVIDER_COUNT};
pub use server::{Server, ServerId};
pub use traffic::TrafficSimulator;
pub use view::WorldScanView;
