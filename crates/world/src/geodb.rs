//! The world's geographic database.
//!
//! A catalog of datacenter metros across every continent, plus a *noisy*
//! geolocation view: commercial geo databases (Censys metadata, §3.3) are
//! right most of the time but not always — the paper reconciles
//! disagreeing location sources by majority vote and reports <7%
//! disagreement (§4.2).

use iotmap_nettypes::{Continent, Location, SimRng};

/// Index into the city catalog.
pub type CityId = usize;

/// The geographic database.
#[derive(Debug, Clone)]
pub struct GeoDb {
    cities: Vec<Location>,
}

impl GeoDb {
    /// The standard catalog of datacenter metros.
    pub fn standard() -> Self {
        use Continent::*;
        let mut cities = Vec::new();
        let mut add = |city: &str, cc: &str, cont: Continent, lat: f64, lon: f64| {
            cities.push(Location::new(city, cc, cont, lat, lon));
        };
        // Europe.
        add("Frankfurt", "DE", Europe, 50.11, 8.68);
        add("Berlin", "DE", Europe, 52.52, 13.40);
        add("Amsterdam", "NL", Europe, 52.37, 4.90);
        add("Dublin", "IE", Europe, 53.35, -6.26);
        add("London", "GB", Europe, 51.51, -0.13);
        add("Paris", "FR", Europe, 48.86, 2.35);
        add("Stockholm", "SE", Europe, 59.33, 18.07);
        add("Milan", "IT", Europe, 45.46, 9.19);
        add("Madrid", "ES", Europe, 40.42, -3.70);
        add("Warsaw", "PL", Europe, 52.23, 21.01);
        add("Zurich", "CH", Europe, 47.38, 8.54);
        add("Helsinki", "FI", Europe, 60.17, 24.94);
        add("Brussels", "BE", Europe, 50.85, 4.35);
        // North America.
        add("Ashburn", "US", NorthAmerica, 39.04, -77.49);
        add("Columbus", "US", NorthAmerica, 39.96, -83.00);
        add("Dallas", "US", NorthAmerica, 32.78, -96.80);
        add("Portland", "US", NorthAmerica, 45.52, -122.68);
        add("San Jose", "US", NorthAmerica, 37.34, -121.89);
        add("Chicago", "US", NorthAmerica, 41.88, -87.63);
        add("Atlanta", "US", NorthAmerica, 33.75, -84.39);
        add("Phoenix", "US", NorthAmerica, 33.45, -112.07);
        add("Montreal", "CA", NorthAmerica, 45.50, -73.57);
        add("Toronto", "CA", NorthAmerica, 43.65, -79.38);
        add("Queretaro", "MX", NorthAmerica, 20.59, -100.39);
        // South America.
        add("Sao Paulo", "BR", SouthAmerica, -23.55, -46.63);
        add("Santiago", "CL", SouthAmerica, -33.45, -70.67);
        // Asia.
        add("Beijing", "CN", Asia, 39.90, 116.41);
        add("Shanghai", "CN", Asia, 31.23, 121.47);
        add("Shenzhen", "CN", Asia, 22.54, 114.06);
        add("Hangzhou", "CN", Asia, 30.27, 120.16);
        add("Guangzhou", "CN", Asia, 23.13, 113.26);
        add("Hong Kong", "HK", Asia, 22.32, 114.17);
        add("Tokyo", "JP", Asia, 35.68, 139.69);
        add("Osaka", "JP", Asia, 34.69, 135.50);
        add("Seoul", "KR", Asia, 37.57, 126.98);
        add("Singapore", "SG", Asia, 1.35, 103.82);
        add("Mumbai", "IN", Asia, 19.08, 72.88);
        add("Delhi", "IN", Asia, 28.61, 77.21);
        add("Taipei", "TW", Asia, 25.03, 121.57);
        add("Dubai", "AE", Asia, 25.20, 55.27);
        add("Tel Aviv", "IL", Asia, 32.09, 34.78);
        add("Jakarta", "ID", Asia, -6.21, 106.85);
        // Africa.
        add("Johannesburg", "ZA", Africa, -26.20, 28.05);
        add("Cape Town", "ZA", Africa, -33.92, 18.42);
        // Oceania.
        add("Sydney", "AU", Oceania, -33.87, 151.21);
        add("Melbourne", "AU", Oceania, -37.81, 144.96);
        GeoDb { cities }
    }

    /// Number of catalogued cities.
    pub fn len(&self) -> usize {
        self.cities.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.cities.is_empty()
    }

    /// Location of a city by id.
    pub fn location(&self, id: CityId) -> &Location {
        &self.cities[id]
    }

    /// Find a city id by name. Panics if unknown (catalog is static).
    pub fn id_of(&self, city: &str) -> CityId {
        self.cities
            .iter()
            .position(|c| c.city == city)
            .unwrap_or_else(|| panic!("unknown city {city:?}"))
    }

    /// All city ids on a continent.
    pub fn on_continent(&self, continent: Continent) -> Vec<CityId> {
        (0..self.cities.len())
            .filter(|&i| self.cities[i].continent == continent)
            .collect()
    }

    /// All city ids in a country.
    pub fn in_country(&self, cc: &str) -> Vec<CityId> {
        (0..self.cities.len())
            .filter(|&i| self.cities[i].country.as_str() == cc)
            .collect()
    }

    /// A *noisy* geolocation of a city: with probability `error_rate`,
    /// report some other city instead — the imperfection of commercial geo
    /// databases that forces the majority-vote reconciliation of §4.2.
    pub fn noisy_location(&self, truth: CityId, error_rate: f64, rng: &mut SimRng) -> Location {
        if rng.chance(error_rate) && self.cities.len() > 1 {
            // Wrong answers are usually *plausibly* wrong: same continent
            // most of the time.
            let truth_loc = &self.cities[truth];
            let same_continent = self.on_continent(truth_loc.continent);
            let pool = if same_continent.len() > 1 && rng.chance(0.7) {
                same_continent
            } else {
                (0..self.cities.len()).collect()
            };
            loop {
                let pick = *rng.choose(&pool);
                if pick != truth {
                    return self.cities[pick].clone();
                }
            }
        } else {
            self.cities[truth].clone()
        }
    }

    /// Iterate over all locations.
    pub fn iter(&self) -> impl Iterator<Item = &Location> {
        self.cities.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_continents() {
        let db = GeoDb::standard();
        for cont in Continent::ALL {
            assert!(!db.on_continent(cont).is_empty(), "no city on {cont}");
        }
        assert!(db.len() >= 40);
    }

    #[test]
    fn lookup_by_name_and_country() {
        let db = GeoDb::standard();
        let fra = db.id_of("Frankfurt");
        assert_eq!(db.location(fra).country.as_str(), "DE");
        assert_eq!(db.in_country("DE").len(), 2);
        assert!(db.in_country("US").len() >= 6);
        assert!(db.in_country("CN").len() >= 4);
    }

    #[test]
    #[should_panic(expected = "unknown city")]
    fn unknown_city_panics() {
        GeoDb::standard().id_of("Atlantis");
    }

    #[test]
    fn noisy_location_error_rate() {
        let db = GeoDb::standard();
        let mut rng = SimRng::new(1);
        let truth = db.id_of("Frankfurt");
        let n = 10_000;
        let wrong = (0..n)
            .filter(|_| db.noisy_location(truth, 0.07, &mut rng).city != "Frankfurt")
            .count();
        let rate = wrong as f64 / n as f64;
        assert!((0.05..0.09).contains(&rate), "error rate {rate}");
    }

    #[test]
    fn zero_error_rate_is_exact() {
        let db = GeoDb::standard();
        let mut rng = SimRng::new(2);
        let truth = db.id_of("Tokyo");
        for _ in 0..100 {
            assert_eq!(db.noisy_location(truth, 0.0, &mut rng).city, "Tokyo");
        }
    }
}
