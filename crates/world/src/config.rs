//! World generation parameters.

use iotmap_nettypes::StudyPeriod;

/// Parameters controlling world generation. Everything downstream is a
/// pure function of this struct.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed.
    pub seed: u64,
    /// Subscriber-line scale divisor: the ISP has `15_000_000 / scale`
    /// lines. 1 = the paper's full scale (do not attempt on a laptop).
    pub scale: u64,
    /// Server-address scale divisor applied to Table 1 /24 targets.
    /// 1 reproduces Table 1 counts exactly.
    pub ip_scale: u32,
    /// Probability that a given domain's resolutions are captured by the
    /// passive-DNS sensor network at all (§3.6: DNSDB "does not have full
    /// coverage").
    pub passive_dns_coverage: f64,
    /// Fraction of active IPv6 gateway addresses present on the hitlist
    /// (§3.6: discovery "is directly influenced by the coverage of the
    /// chosen IPv6 hitlists").
    pub hitlist_coverage: f64,
    /// Error rate of the scanners' geolocation database (§4.2 reconciles
    /// sources disagreeing on <7% of IPs).
    pub geo_error_rate: f64,
    /// NetFlow packet-sampling rate (1:N). 1 disables sampling.
    pub sampling_rate: u64,
    /// Number of synthetic non-IoT background hosts (scan/DNS noise).
    pub background_hosts: u32,
    /// The main measurement window.
    pub study_period: StudyPeriod,
}

impl WorldConfig {
    /// Small world for unit/integration tests: ~5k lines, ~1/16 of the
    /// paper's server-address space.
    pub fn small(seed: u64) -> Self {
        WorldConfig {
            seed,
            scale: 3000,
            ip_scale: 16,
            passive_dns_coverage: 0.92,
            hitlist_coverage: 0.9,
            geo_error_rate: 0.05,
            sampling_rate: 1,
            background_hosts: 400,
            study_period: StudyPeriod::main_week(),
        }
    }

    /// Medium world for examples: ~20k lines, 1/4 address space.
    pub fn medium(seed: u64) -> Self {
        WorldConfig {
            scale: 750,
            ip_scale: 4,
            background_hosts: 1000,
            ..Self::small(seed)
        }
    }

    /// Experiment-grade world: full Table 1 address space, 1/500 of the
    /// line population (30k lines).
    pub fn paper(seed: u64) -> Self {
        WorldConfig {
            scale: 500,
            ip_scale: 1,
            background_hosts: 2000,
            ..Self::small(seed)
        }
    }

    /// Number of ISP subscriber lines at this scale.
    pub fn line_count(&self) -> u64 {
        15_000_000 / self.scale
    }

    /// Switch the study window to the December 2021 outage week.
    pub fn with_outage_week(mut self) -> Self {
        self.study_period = StudyPeriod::outage_week();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_sanely() {
        let s = WorldConfig::small(1);
        let m = WorldConfig::medium(1);
        let p = WorldConfig::paper(1);
        assert!(s.line_count() < m.line_count());
        assert!(m.line_count() < p.line_count());
        assert_eq!(p.ip_scale, 1);
        assert_eq!(s.line_count(), 5000);
    }

    #[test]
    fn outage_week_switch() {
        let c = WorldConfig::small(1).with_outage_week();
        assert_eq!(c.study_period, StudyPeriod::outage_week());
    }
}
