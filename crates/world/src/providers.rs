//! The sixteen IoT backend providers of Table 1 — ground-truth
//! specifications.
//!
//! Each [`ProviderSpec`] encodes what the real provider's public
//! documentation and infrastructure looked like during the study period:
//! sites (own datacenters or leased cloud regions), announcing ASes,
//! address-space size (the Table 1 /24 and /56 targets), domain naming
//! scheme, TLS behaviour (SNI, client certificates), DNS answer policies,
//! churn, published ground truth, and the traffic profile its devices
//! exhibit at a European residential ISP.

use iotmap_nettypes::{Asn, PortProto};

/// Number of providers in the study.
pub const PROVIDER_COUNT: usize = 16;

/// §4.2's deployment taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentStrategy {
    /// Dedicated Infrastructure: all addresses announced by the backend's
    /// own ASes.
    Dedicated,
    /// Public Cloud Resources / CDN.
    PublicCloud,
    /// Oracle: own infrastructure extended with a CDN (DI+PR).
    Mixed,
}

impl DeploymentStrategy {
    /// Table 1 label.
    pub fn label(&self) -> &'static str {
        match self {
            DeploymentStrategy::Dedicated => "DI",
            DeploymentStrategy::PublicCloud => "PR",
            DeploymentStrategy::Mixed => "DI+PR",
        }
    }
}

/// Where a site's addresses come from and who announces them.
#[derive(Debug, Clone)]
pub enum SiteHosting {
    /// The provider's own datacenter, announced by one of its own ASes.
    Own { asn: Asn },
    /// Leased from a cloud region; announced by the cloud's AS for that
    /// region.
    Cloud {
        cloud: &'static str,
        region: &'static str,
    },
}

/// One deployment site.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Location code as it appears in domain names / documentation
    /// (`us-east-1`, `eu1`, `cn-north-4`, …).
    pub code: String,
    /// City (geo-catalog name). For cloud sites this must match the cloud
    /// region's metro.
    pub city: &'static str,
    pub hosting: SiteHosting,
    /// Share of the provider's IPv4 space at this site.
    pub weight: f64,
    /// Number of IPv6 /56 blocks at this site (0 = no IPv6 here).
    pub v6_slash56: u32,
}

/// How the provider names its gateway domains (§3.2's
/// `<subdomain>.<region>.<second-level-domain>` taxonomy).
#[derive(Debug, Clone)]
pub enum DomainStyle {
    /// `<tenant>.<service>.<region>.<sld>` — Amazon, Alibaba, Baidu,
    /// Oracle.
    TenantServiceRegion {
        service: &'static str,
        sld: &'static str,
    },
    /// `<tenant>.<sld>` — Microsoft (`azure-devices.net`), Bosch, Cisco,
    /// IBM, SAP, Tencent, PTC.
    TenantSld { sld: &'static str },
    /// `<tenant>.<region>.<sld>` — Siemens Mindsphere (`eu1.mindsphere.io`).
    TenantRegion { sld: &'static str },
    /// `<service>.<region>.<sld>` — Huawei (`iot-mqtts.cn-north-4…`),
    /// Fujitsu; one name per (service, region), no tenant part.
    ServiceRegion {
        services: &'static [&'static str],
        sld: &'static str,
    },
    /// Fixed FQDNs shared by all customers — Google
    /// (`mqtt.googleapis.com`), Sierra Wireless (`eu.airvantage.net`).
    Fixed { names: &'static [&'static str] },
}

/// Diurnal shape of device activity (Fig. 8's three behaviours).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivityPattern {
    /// Consumer/entertainment: peaks 6 pm – 10 pm.
    Evening,
    /// Enterprise/industrial: constant 8 am – 8 pm.
    Daytime,
    /// Machine telemetry: flat around the clock.
    Constant,
}

impl ActivityPattern {
    /// Relative activity weight for an hour of day (UTC≈local at the ISP).
    pub fn hour_weight(&self, hour: u32) -> f64 {
        match self {
            ActivityPattern::Evening => match hour {
                18..=21 => 3.0,
                22 | 17 => 2.0,
                7..=16 => 1.0,
                23 | 6 => 0.7,
                _ => 0.25,
            },
            ActivityPattern::Daytime => match hour {
                8..=19 => 2.0,
                7 | 20 => 1.0,
                _ => 0.35,
            },
            ActivityPattern::Constant => 1.0,
        }
    }
}

/// A `(port, weight)` pair of the provider's traffic mix.
#[derive(Debug, Clone, Copy)]
pub struct PortShare {
    pub port: PortProto,
    pub weight: f64,
}

/// A heavy-tailed sub-population (Bosch's AMQP bulk transfers, §5.6:
/// "around 18% of the subscriber lines exchange between 100 MB and 1 GB
/// per day" on port 5671, observed at a single provider).
#[derive(Debug, Clone, Copy)]
pub struct HeavyTail {
    /// Fraction of this provider's devices in the heavy class.
    pub fraction: f64,
    /// Median daily download bytes for the heavy class.
    pub dn_bytes_median: f64,
    /// Port carrying the heavy traffic.
    pub port: PortProto,
}

/// Device behaviour at the European ISP.
#[derive(Debug, Clone)]
pub struct TrafficProfile {
    /// Device-ownership weight among the ISP's IoT devices.
    pub popularity: f64,
    pub pattern: ActivityPattern,
    /// Mean sessions per device per day.
    pub sessions_per_day: f64,
    /// Median daily *download* bytes per device (log-normal body).
    pub dn_bytes_median: f64,
    /// Log-space sigma of the daily volume.
    pub sigma: f64,
    /// Downstream/upstream byte ratio (>1 = download-heavy).
    pub down_up_ratio: f64,
    /// Port mix.
    pub ports: Vec<PortShare>,
    /// Optional heavy-tail sub-population.
    pub heavy: Option<HeavyTail>,
}

/// What the provider publishes about its own addresses (§3.4 ground
/// truth: Cisco and Siemens publish full IP lists, Microsoft publishes
/// prefixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Published {
    Nothing,
    FullIpList,
    Prefixes,
}

/// Ground-truth specification of one IoT backend provider.
#[derive(Debug, Clone)]
pub struct ProviderSpec {
    /// Canonical key (`"amazon"`, `"google"`, …) — the join key between
    /// world and methodology.
    pub name: &'static str,
    /// Display name as in Table 1.
    pub display: &'static str,
    pub strategy: DeploymentStrategy,
    pub sites: Vec<SiteSpec>,
    /// Table 1 target: number of IPv4 /24s covered by gateway addresses.
    pub slash24_target: u32,
    pub domain_style: DomainStyle,
    /// Number of tenant/customer domains (for styles with a tenant part).
    pub tenants: u32,
    /// Serve the IoT certificate only when correct SNI is presented
    /// (Google).
    pub sni_required: bool,
    /// Ports requiring a client certificate — handshake fails for scanners
    /// (Amazon MQTT).
    pub client_cert_ports: Vec<u16>,
    /// Fraction of servers that additionally expose a plain HTTPS endpoint
    /// with a revealing certificate (drives the Censys column of Fig. 3).
    pub cert_exposed_frac: f64,
    /// Uses an anycast front (Amazon Global Accelerator, Siemens).
    pub anycast: bool,
    /// Fraction of servers replaced per day (cloud churn — Fig. 4).
    pub churn_daily: f64,
    /// Published ground truth (§3.4).
    pub published: Published,
    /// Fraction of gateway servers with *no* DNS presence and a generic
    /// certificate (devices reach them via baked-in IPs) — the Microsoft
    /// "4 missed IPs" mechanic.
    pub undocumented_frac: f64,
    /// Whether part of the HTTPS infrastructure is shared with non-IoT
    /// services (Google; also true for the Akamai-fronted share of
    /// Oracle).
    pub shared_https: bool,
    pub profile: TrafficProfile,
}

impl ProviderSpec {
    /// All of this provider's own ASes (empty for pure cloud tenants).
    pub fn own_asns(&self) -> Vec<Asn> {
        let mut out: Vec<Asn> = self
            .sites
            .iter()
            .filter_map(|s| match s.hosting {
                SiteHosting::Own { asn } => Some(asn),
                SiteHosting::Cloud { .. } => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total IPv6 /56 target across sites.
    pub fn v6_slash56_target(&self) -> u32 {
        self.sites.iter().map(|s| s.v6_slash56).sum()
    }

    /// Does the provider offer IPv6 at all? (Seven of the sixteen do.)
    pub fn has_ipv6(&self) -> bool {
        self.v6_slash56_target() > 0
    }
}

fn tcp(p: u16) -> PortProto {
    PortProto::tcp(p)
}

fn udp(p: u16) -> PortProto {
    PortProto::udp(p)
}

fn own(code: &str, city: &'static str, asn: u32, weight: f64, v6: u32) -> SiteSpec {
    SiteSpec {
        code: code.to_string(),
        city,
        hosting: SiteHosting::Own { asn: Asn(asn) },
        weight,
        v6_slash56: v6,
    }
}

fn leased(
    cloud: &'static str,
    region: &'static str,
    city: &'static str,
    weight: f64,
    v6: u32,
) -> SiteSpec {
    SiteSpec {
        code: region.to_string(),
        city,
        hosting: SiteHosting::Cloud { cloud, region },
        weight,
        v6_slash56: v6,
    }
}

/// The full provider catalog — one entry per Table 1 row, alphabetical.
pub fn catalog() -> Vec<ProviderSpec> {
    let mut v = Vec::with_capacity(PROVIDER_COUNT);

    // ----- Alibaba IoT: DI, 2 AS, 73 /24s (2 v6 /56s), 27 loc / 13 ctry.
    {
        // Own infrastructure: Chinese sites on AS37963, international on
        // AS45103. IPv6 only in China (per its documentation).
        let cn = |code: &str, city, w, v6| own(code, city, 37963, w, v6);
        let intl = |code: &str, city, w| own(code, city, 45103, w, 0);
        let sites = vec![
            cn("cn-beijing-a", "Beijing", 2.0, 1),
            cn("cn-beijing-b", "Beijing", 1.0, 0),
            cn("cn-shanghai-a", "Shanghai", 3.0, 1),
            cn("cn-shanghai-b", "Shanghai", 1.0, 0),
            cn("cn-hangzhou-a", "Hangzhou", 2.0, 0),
            cn("cn-hangzhou-b", "Hangzhou", 1.0, 0),
            cn("cn-shenzhen-a", "Shenzhen", 2.0, 0),
            cn("cn-guangzhou-a", "Guangzhou", 1.0, 0),
            intl("cn-hongkong-a", "Hong Kong", 1.0),
            intl("cn-hongkong-b", "Hong Kong", 0.5),
            intl("ap-southeast-1a", "Singapore", 1.5),
            intl("ap-southeast-1b", "Singapore", 0.5),
            intl("ap-northeast-1a", "Tokyo", 1.0),
            intl("ap-northeast-1b", "Osaka", 0.5),
            intl("ap-south-1a", "Mumbai", 0.8),
            intl("ap-south-1b", "Delhi", 0.4),
            intl("us-east-1a", "Ashburn", 1.5),
            intl("us-west-1a", "San Jose", 1.0),
            intl("us-west-1b", "San Jose", 0.5),
            intl("eu-central-1a", "Frankfurt", 1.5),
            intl("eu-central-1b", "Frankfurt", 0.5),
            intl("eu-west-1a", "London", 0.8),
            intl("ap-seoul-1a", "Seoul", 0.5),
            intl("me-east-1a", "Dubai", 0.4),
            intl("ap-jakarta-1a", "Jakarta", 0.4),
            intl("eu-paris-1a", "Paris", 0.4),
            intl("ap-sydney-1a", "Sydney", 0.4),
        ];
        v.push(ProviderSpec {
            name: "alibaba",
            display: "Alibaba IoT",
            strategy: DeploymentStrategy::Dedicated,
            sites,
            slash24_target: 73,
            domain_style: DomainStyle::TenantServiceRegion {
                service: "iot-as-mqtt",
                sld: "aliyuncs.com",
            },
            tenants: 150,
            sni_required: false,
            client_cert_ports: vec![],
            // Plaintext MQTT 1883 carries no certificate: only the HTTPS
            // side is cert-visible. (Fig. 7: T4 lines invisible to
            // TLS-only discovery.)
            cert_exposed_frac: 0.35,
            anycast: false,
            churn_daily: 0.0,
            published: Published::Nothing,
            undocumented_frac: 0.0,
            shared_https: false,
            profile: TrafficProfile {
                popularity: 6.0,
                pattern: ActivityPattern::Evening,
                sessions_per_day: 20.0,
                dn_bytes_median: 0.25e6,
                sigma: 1.1,
                down_up_ratio: 0.5, // camera-style upstream-heavy
                ports: vec![
                    PortShare {
                        port: tcp(1883),
                        weight: 0.5,
                    },
                    PortShare {
                        port: tcp(443),
                        weight: 0.4,
                    },
                    PortShare {
                        port: udp(5682),
                        weight: 0.1,
                    },
                ],
                heavy: None,
            },
        });
    }

    // ----- Amazon IoT: DI (it *is* the cloud), 4 AS, 9000 /24s (20 v6),
    // 18 loc / 15 ctry + anycast.
    {
        let aws = |region: &'static str, city, w, v6| leased("aws", region, city, w, v6);
        // The US regions carry the bulk of the fleet (§5.7: ~65% of all
        // discovered backends sit in the US).
        let sites = vec![
            aws("us-east-1", "Ashburn", 30.0, 5),
            aws("us-east-2", "Columbus", 12.0, 0),
            aws("us-west-1", "San Jose", 8.0, 0),
            aws("us-west-2", "Portland", 16.0, 3),
            aws("ca-central-1", "Montreal", 3.0, 0),
            aws("sa-east-1", "Sao Paulo", 1.5, 0),
            aws("eu-west-1", "Dublin", 6.0, 4),
            aws("eu-west-2", "London", 2.5, 0),
            aws("eu-west-3", "Paris", 1.5, 0),
            aws("eu-central-1", "Frankfurt", 5.5, 4),
            aws("eu-north-1", "Stockholm", 1.0, 0),
            aws("eu-south-1", "Milan", 0.8, 0),
            aws("ap-southeast-1", "Singapore", 1.2, 2),
            aws("ap-southeast-2", "Sydney", 0.8, 0),
            aws("ap-northeast-1", "Tokyo", 1.2, 2),
            aws("ap-south-1", "Mumbai", 0.8, 0),
            aws("me-south-1", "Dubai", 0.5, 0),
            aws("af-south-1", "Cape Town", 0.5, 0),
        ];
        v.push(ProviderSpec {
            name: "amazon",
            display: "Amazon IoT",
            strategy: DeploymentStrategy::Dedicated,
            sites,
            slash24_target: 9000,
            domain_style: DomainStyle::TenantServiceRegion {
                service: "iot",
                sld: "amazonaws.com",
            },
            tenants: 800,
            sni_required: false,
            // MQTT endpoints demand mutual TLS: scanners learn nothing
            // from 8883/443-MQTT (§3.3).
            client_cert_ports: vec![8883],
            // Only the HTTPS data-plane share of servers volunteers an
            // identifying certificate.
            cert_exposed_frac: 0.30,
            anycast: true, // Global Accelerator
            churn_daily: 0.04,
            published: Published::Nothing,
            undocumented_frac: 0.0,
            shared_https: false,
            profile: TrafficProfile {
                popularity: 30.0,
                pattern: ActivityPattern::Evening,
                sessions_per_day: 30.0,
                dn_bytes_median: 0.35e6,
                sigma: 1.1,
                down_up_ratio: 1.6,
                ports: vec![
                    PortShare {
                        port: tcp(8883),
                        weight: 0.55,
                    },
                    PortShare {
                        port: tcp(443),
                        weight: 0.35,
                    },
                    PortShare {
                        port: tcp(8443),
                        weight: 0.10,
                    },
                ],
                heavy: None,
            },
        });
    }

    // ----- Baidu IoT: DI, 2 AS, 26 /24s (1 v6), 2 loc / 1 ctry (CN).
    v.push(ProviderSpec {
        name: "baidu",
        display: "Baidu IoT",
        strategy: DeploymentStrategy::Dedicated,
        sites: vec![
            own("cn-north-1", "Beijing", 38365, 3.0, 1),
            own("cn-east-1", "Shanghai", 55967, 1.5, 0),
        ],
        slash24_target: 26,
        domain_style: DomainStyle::TenantServiceRegion {
            service: "iot",
            sld: "baidubce.com",
        },
        tenants: 60,
        sni_required: false,
        client_cert_ports: vec![],
        cert_exposed_frac: 0.8,
        anycast: false,
        churn_daily: 0.0,
        published: Published::Nothing,
        undocumented_frac: 0.0,
        shared_https: false,
        profile: TrafficProfile {
            popularity: 0.03, // essentially no EU residential footprint (O5)
            pattern: ActivityPattern::Evening,
            sessions_per_day: 8.0,
            dn_bytes_median: 0.1e6,
            sigma: 1.0,
            down_up_ratio: 1.0,
            ports: vec![
                PortShare {
                    port: tcp(1883),
                    weight: 0.3,
                },
                PortShare {
                    port: tcp(1884),
                    weight: 0.2,
                },
                PortShare {
                    port: tcp(443),
                    weight: 0.3,
                },
                PortShare {
                    port: udp(5682),
                    weight: 0.1,
                },
                PortShare {
                    port: udp(5683),
                    weight: 0.1,
                },
            ],
            heavy: None,
        },
    });

    // ----- Bosch IoT Hub: PR (AWS), 1 AS, 290 /24s, 1 loc / 1 ctry.
    v.push(ProviderSpec {
        name: "bosch",
        display: "Bosch IoT Hub",
        strategy: DeploymentStrategy::PublicCloud,
        sites: vec![leased("aws", "eu-central-1", "Frankfurt", 1.0, 0)],
        slash24_target: 290,
        domain_style: DomainStyle::TenantSld {
            sld: "bosch-iot-hub.com",
        },
        tenants: 80,
        sni_required: false,
        client_cert_ports: vec![],
        cert_exposed_frac: 0.9,
        anycast: false,
        churn_daily: 0.05,
        published: Published::Nothing,
        undocumented_frac: 0.0,
        shared_https: false,
        profile: TrafficProfile {
            popularity: 4.0,
            pattern: ActivityPattern::Constant,
            sessions_per_day: 15.0,
            dn_bytes_median: 0.4e6,
            sigma: 1.1,
            down_up_ratio: 3.0,
            ports: vec![
                PortShare {
                    port: tcp(8883),
                    weight: 0.55,
                },
                PortShare {
                    port: tcp(443),
                    weight: 0.32,
                },
                PortShare {
                    port: tcp(5671),
                    weight: 0.05,
                },
                PortShare {
                    port: udp(5684),
                    weight: 0.08,
                },
            ],
            // §5.6: ~18% of the *lines seen on TCP/5671* move 100 MB–1 GB
            // per day, yet that volume is "a very small fraction of the
            // overall traffic" — so the bulk-AMQP class is a thin slice of
            // Bosch's device population, sharing the port with the much
            // larger light-telemetry class.
            heavy: Some(HeavyTail {
                fraction: 0.08,
                dn_bytes_median: 2.5e8,
                port: tcp(5671),
            }),
        },
    });

    // ----- Cisco Kinetic: PR (AWS), 2 AS, 14 /24s, 4 loc / 2 ctry.
    v.push(ProviderSpec {
        name: "cisco",
        display: "Cisco Kinetic",
        strategy: DeploymentStrategy::PublicCloud,
        sites: vec![
            leased("aws", "us-east-1", "Ashburn", 2.0, 0),
            leased("aws", "us-east-2", "Columbus", 1.0, 0),
            leased("aws", "us-west-2", "Portland", 1.0, 0),
            leased("aws", "ca-central-1", "Montreal", 1.0, 0),
        ],
        slash24_target: 14,
        domain_style: DomainStyle::TenantSld {
            sld: "ciscokinetic.io",
        },
        tenants: 50,
        sni_required: false,
        client_cert_ports: vec![],
        // The Kinetic data plane runs on custom TCP 9123/9124 without TLS;
        // only a minority of gateways expose a 443 certificate (D3 in
        // Fig. 7 loses almost all lines under TLS-only discovery).
        cert_exposed_frac: 0.30,
        anycast: false,
        churn_daily: 0.02,
        published: Published::FullIpList,
        undocumented_frac: 0.0,
        shared_https: false,
        profile: TrafficProfile {
            popularity: 2.5,
            pattern: ActivityPattern::Daytime,
            sessions_per_day: 15.0,
            dn_bytes_median: 0.3e6,
            sigma: 1.0,
            down_up_ratio: 0.7,
            ports: vec![
                PortShare {
                    port: tcp(8883),
                    weight: 0.25,
                },
                PortShare {
                    port: tcp(443),
                    weight: 0.20,
                },
                PortShare {
                    port: tcp(9123),
                    weight: 0.35,
                },
                PortShare {
                    port: tcp(9124),
                    weight: 0.20,
                },
            ],
            heavy: None,
        },
    });

    // ----- Fujitsu IoT: DI, 1 AS, 2 /24s, 2 loc / 1 ctry (JP).
    v.push(ProviderSpec {
        name: "fujitsu",
        display: "Fujitsu IoT",
        strategy: DeploymentStrategy::Dedicated,
        sites: vec![
            own("jp-east-1", "Tokyo", 2510, 1.0, 0),
            own("jp-west-1", "Osaka", 2510, 1.0, 0),
        ],
        slash24_target: 2,
        domain_style: DomainStyle::ServiceRegion {
            services: &["iot"],
            sld: "paas.cloud.global.fujitsu.com",
        },
        tenants: 0,
        sni_required: false,
        client_cert_ports: vec![],
        cert_exposed_frac: 1.0,
        anycast: false,
        churn_daily: 0.0,
        published: Published::Nothing,
        undocumented_frac: 0.0,
        shared_https: false,
        profile: TrafficProfile {
            popularity: 0.4,
            pattern: ActivityPattern::Daytime,
            sessions_per_day: 10.0,
            dn_bytes_median: 0.1e6,
            sigma: 1.0,
            down_up_ratio: 1.0,
            ports: vec![
                PortShare {
                    port: tcp(8883),
                    weight: 0.7,
                },
                PortShare {
                    port: tcp(443),
                    weight: 0.3,
                },
            ],
            heavy: None,
        },
    });

    // ----- Google IoT Core: DI, 1 AS, 114 /24s (11 v6), 77 loc / 14 ctry.
    {
        // 77 zones across 14 countries, generated as (country plan ×
        // zones) over the metro catalog; all announced by AS15169.
        let plan: &[(&'static str, &[&'static str], usize)] = &[
            (
                "us",
                &[
                    "Ashburn", "Columbus", "Dallas", "Portland", "San Jose", "Chicago", "Atlanta",
                    "Phoenix",
                ],
                25,
            ),
            ("de", &["Frankfurt", "Berlin"], 6),
            ("nl", &["Amsterdam"], 6),
            ("ie", &["Dublin"], 4),
            ("gb", &["London"], 5),
            ("fr", &["Paris"], 4),
            ("it", &["Milan"], 3),
            ("es", &["Madrid"], 3),
            ("pl", &["Warsaw"], 3),
            ("jp", &["Tokyo", "Osaka"], 5),
            ("sg", &["Singapore"], 4),
            ("in", &["Mumbai", "Delhi"], 3),
            ("br", &["Sao Paulo"], 3),
            ("au", &["Sydney", "Melbourne"], 3),
        ];
        let mut sites = Vec::new();
        let mut v6_budget = 11u32;
        for (cc, cities, zones) in plan {
            for z in 0..*zones {
                let city = cities[z % cities.len()];
                let v6 = if v6_budget > 0 && z == 0 {
                    v6_budget -= 1;
                    1
                } else {
                    0
                };
                sites.push(own(
                    &format!(
                        "{cc}-{}{}-{}",
                        city.to_lowercase().replace(' ', ""),
                        z / cities.len() + 1,
                        (b'a' + (z % 3) as u8) as char
                    ),
                    city,
                    15169,
                    if *cc == "us" { 2.0 } else { 1.0 },
                    v6,
                ));
            }
        }
        v.push(ProviderSpec {
            name: "google",
            display: "Google IoT Core",
            strategy: DeploymentStrategy::Dedicated,
            sites,
            slash24_target: 114,
            domain_style: DomainStyle::Fixed {
                names: &["mqtt.googleapis.com", "cloudiotdevice.googleapis.com"],
            },
            tenants: 0,
            // §3.5: "Google is using TLS SNI. Thus, a majority of Google's
            // IoT platform IPs are discovered using passive DNS" —
            // certificate scans see <2%.
            sni_required: true,
            client_cert_ports: vec![],
            cert_exposed_frac: 0.02, // the stray misconfigured fronts
            anycast: false,
            churn_daily: 0.0,
            published: Published::Nothing,
            undocumented_frac: 0.0,
            // The HTTPS infrastructure is shared with other Google
            // services (§3.4's Google split finding).
            shared_https: true,
            profile: TrafficProfile {
                popularity: 18.0,
                pattern: ActivityPattern::Constant,
                sessions_per_day: 40.0,
                dn_bytes_median: 0.15e6,
                sigma: 1.0,
                down_up_ratio: 1.2,
                ports: vec![
                    PortShare {
                        port: tcp(8883),
                        weight: 0.5,
                    },
                    PortShare {
                        port: tcp(443),
                        weight: 0.5,
                    },
                ],
                heavy: None,
            },
        });
    }

    // ----- Huawei IoT: DI, 1 AS, 26 /24s, 2 loc / 1 ctry (CN).
    v.push(ProviderSpec {
        name: "huawei",
        display: "Huawei IoT",
        strategy: DeploymentStrategy::Dedicated,
        sites: vec![
            own("cn-north-4", "Beijing", 136907, 2.0, 0),
            own("cn-east-3", "Shanghai", 136907, 1.0, 0),
        ],
        slash24_target: 26,
        domain_style: DomainStyle::ServiceRegion {
            services: &["iot-mqtts", "iot-https"],
            sld: "myhuaweicloud.com",
        },
        tenants: 0,
        sni_required: false,
        client_cert_ports: vec![],
        cert_exposed_frac: 0.8,
        anycast: false,
        churn_daily: 0.0,
        published: Published::Nothing,
        undocumented_frac: 0.0,
        shared_https: false,
        profile: TrafficProfile {
            popularity: 0.05, // O3: hardly any EU residential activity
            pattern: ActivityPattern::Evening,
            sessions_per_day: 8.0,
            dn_bytes_median: 0.1e6,
            sigma: 1.0,
            down_up_ratio: 1.0,
            ports: vec![
                PortShare {
                    port: tcp(8883),
                    weight: 0.5,
                },
                PortShare {
                    port: tcp(443),
                    weight: 0.3,
                },
                PortShare {
                    port: tcp(8943),
                    weight: 0.2,
                },
            ],
            heavy: None,
        },
    });

    // ----- IBM IoT (Watson): DI, 2 AS, 116 /24s, 12 loc / 8 ctry.
    {
        let us = |code: &str, city, w| own(code, city, 36351, w, 0);
        let intl = |code: &str, city, w| own(code, city, 13884, w, 0);
        v.push(ProviderSpec {
            name: "ibm",
            display: "IBM IoT",
            strategy: DeploymentStrategy::Dedicated,
            sites: vec![
                us("us-south-1", "Dallas", 3.0),
                us("us-south-2", "Dallas", 1.0),
                us("us-east-1", "Ashburn", 2.0),
                us("us-west-1", "San Jose", 1.0),
                intl("eu-de-1", "Frankfurt", 2.0),
                intl("eu-de-2", "Frankfurt", 1.0),
                intl("eu-gb-1", "London", 1.5),
                intl("eu-nl-1", "Amsterdam", 1.0),
                intl("jp-tok-1", "Tokyo", 1.0),
                intl("au-syd-1", "Sydney", 1.0),
                intl("br-sao-1", "Sao Paulo", 0.8),
                intl("in-che-1", "Mumbai", 0.8),
            ],
            slash24_target: 116,
            domain_style: DomainStyle::TenantSld {
                sld: "internetofthings.ibmcloud.com",
            },
            tenants: 100,
            sni_required: false,
            client_cert_ports: vec![],
            cert_exposed_frac: 0.7,
            anycast: false,
            churn_daily: 0.0,
            published: Published::Nothing,
            undocumented_frac: 0.0,
            shared_https: false,
            profile: TrafficProfile {
                popularity: 3.0,
                pattern: ActivityPattern::Daytime,
                sessions_per_day: 15.0,
                dn_bytes_median: 0.4e6,
                sigma: 1.1,
                down_up_ratio: 1.4,
                ports: vec![
                    PortShare {
                        port: tcp(8883),
                        weight: 0.5,
                    },
                    PortShare {
                        port: tcp(1883),
                        weight: 0.2,
                    },
                    PortShare {
                        port: tcp(443),
                        weight: 0.3,
                    },
                ],
                heavy: None,
            },
        });
    }

    // ----- Microsoft Azure IoT Hub: DI, 1 AS, 282 /24s, 39 loc / 16 ctry.
    {
        let plan: &[(&'static str, usize)] = &[
            ("Ashburn", 3),
            ("Dallas", 2),
            ("San Jose", 2),
            ("Chicago", 1),
            ("Montreal", 2),
            ("Sao Paulo", 2),
            ("Frankfurt", 3),
            ("Amsterdam", 3),
            ("Dublin", 3),
            ("London", 3),
            ("Paris", 2),
            ("Zurich", 1),
            ("Stockholm", 1),
            ("Warsaw", 1),
            ("Tokyo", 3),
            ("Singapore", 2),
            ("Mumbai", 2),
            ("Sydney", 2),
            ("Seoul", 1),
        ];
        let mut sites = Vec::new();
        for (city, n) in plan {
            for z in 0..*n {
                sites.push(own(
                    &format!("{}-{}", city.to_lowercase().replace(' ', ""), z + 1),
                    city,
                    8068,
                    1.0,
                    0, // "Microsoft explicitly states … it does not yet support IPv6"
                ));
            }
        }
        v.push(ProviderSpec {
            name: "microsoft",
            display: "Microsoft Azure IoT Hub",
            strategy: DeploymentStrategy::Dedicated,
            sites,
            slash24_target: 282,
            domain_style: DomainStyle::TenantSld {
                sld: "azure-devices.net",
            },
            tenants: 250,
            sni_required: false,
            client_cert_ports: vec![],
            cert_exposed_frac: 1.0, // Fig. 3: Censys alone finds all IPs
            anycast: false,
            churn_daily: 0.0,
            published: Published::Prefixes,
            // A handful of gateways have no DNS presence (devices use
            // baked-in addresses) — the §3.4 "missed 4 IPs" mechanic.
            undocumented_frac: 0.035,
            shared_https: false,
            profile: TrafficProfile {
                popularity: 12.0,
                pattern: ActivityPattern::Daytime,
                sessions_per_day: 25.0,
                dn_bytes_median: 0.4e6,
                sigma: 1.1,
                down_up_ratio: 2.0,
                ports: vec![
                    PortShare {
                        port: tcp(8883),
                        weight: 0.75,
                    },
                    PortShare {
                        port: tcp(443),
                        weight: 0.23,
                    },
                    PortShare {
                        port: tcp(5671),
                        weight: 0.02,
                    },
                ],
                heavy: None,
            },
        });
    }

    // ----- Oracle IoT: DI+PR (own + Akamai), 3 AS, 67 /24s,
    // 10 loc / 8 ctry.
    {
        let orc = |code: &str, city, asn: u32, w| own(code, city, asn, w, 0);
        let mut sites = vec![
            orc("us-ashburn-1", "Ashburn", 31898, 2.0),
            orc("us-phoenix-1", "Phoenix", 31898, 2.0),
            orc("uk-london-1", "London", 31898, 1.0),
            orc("eu-frankfurt-1", "Frankfurt", 792, 1.5),
            orc("eu-amsterdam-1", "Amsterdam", 792, 1.0),
            orc("ap-tokyo-1", "Tokyo", 792, 1.0),
            orc("ap-mumbai-1", "Mumbai", 792, 0.8),
            orc("sa-saopaulo-1", "Sao Paulo", 792, 0.8),
            orc("ap-sydney-1", "Sydney", 792, 0.8),
            orc("us-sanjose-1", "San Jose", 31898, 1.0),
        ];
        // The Akamai-fronted share (PR): announced by Akamai, shared with
        // other Akamai customers.
        sites.push(leased("akamai", "edge-fra", "Frankfurt", 1.0, 0));
        sites.push(leased("akamai", "edge-iad", "Ashburn", 1.0, 0));
        v.push(ProviderSpec {
            name: "oracle",
            display: "Oracle IoT",
            strategy: DeploymentStrategy::Mixed,
            sites,
            slash24_target: 67,
            domain_style: DomainStyle::TenantServiceRegion {
                service: "iot",
                sld: "oraclecloud.com",
            },
            tenants: 60,
            sni_required: false,
            client_cert_ports: vec![],
            cert_exposed_frac: 0.7,
            anycast: false,
            churn_daily: 0.0,
            published: Published::Nothing,
            undocumented_frac: 0.0,
            shared_https: true, // the Akamai share serves other customers
            profile: TrafficProfile {
                popularity: 1.0,
                pattern: ActivityPattern::Daytime,
                sessions_per_day: 10.0,
                dn_bytes_median: 0.3e6,
                sigma: 1.0,
                down_up_ratio: 1.1,
                ports: vec![
                    PortShare {
                        port: tcp(8883),
                        weight: 0.6,
                    },
                    PortShare {
                        port: tcp(443),
                        weight: 0.4,
                    },
                ],
                heavy: None,
            },
        });
    }

    // ----- PTC ThingWorx: PR (AWS + Azure), 3 AS, 881 /24s,
    // 10 loc / 8 ctry.
    v.push(ProviderSpec {
        name: "ptc",
        display: "PTC ThingWorx",
        strategy: DeploymentStrategy::PublicCloud,
        sites: vec![
            leased("aws", "us-east-2", "Columbus", 3.0, 0),
            leased("aws", "us-west-2", "Portland", 2.5, 0),
            leased("aws", "sa-east-1", "Sao Paulo", 0.8, 0),
            leased("aws", "eu-west-1", "Dublin", 1.2, 0),
            leased("aws", "eu-west-2", "London", 0.8, 0),
            leased("aws", "eu-central-1", "Frankfurt", 1.2, 0),
            leased("azure", "eastus", "Ashburn", 2.5, 0),
            leased("azure", "westeurope", "Amsterdam", 0.8, 0),
            leased("azure", "southeastasia", "Singapore", 0.6, 0),
            leased("azure", "japaneast", "Tokyo", 0.6, 0),
        ],
        slash24_target: 881,
        domain_style: DomainStyle::TenantSld {
            sld: "cloud.thingworx.com",
        },
        tenants: 80,
        sni_required: false,
        client_cert_ports: vec![],
        cert_exposed_frac: 0.8,
        anycast: false,
        churn_daily: 0.03,
        published: Published::Nothing,
        undocumented_frac: 0.0,
        shared_https: false,
        profile: TrafficProfile {
            popularity: 2.0,
            pattern: ActivityPattern::Daytime,
            sessions_per_day: 12.0,
            dn_bytes_median: 0.4e6,
            sigma: 1.1,
            down_up_ratio: 0.9,
            // "Protocol agnostic" platform: generic TLS plus a custom UDP
            // channel above 10000 (§5.5 observes such ports).
            ports: vec![
                PortShare {
                    port: tcp(443),
                    weight: 0.6,
                },
                PortShare {
                    port: tcp(8883),
                    weight: 0.25,
                },
                PortShare {
                    port: udp(10010),
                    weight: 0.15,
                },
            ],
            heavy: None,
        },
    });

    // ----- SAP IoT: PR (AWS + Azure + Alibaba), 6 AS, 2929 /24s,
    // 7 loc / 5 ctry.
    v.push(ProviderSpec {
        name: "sap",
        display: "SAP IoT",
        strategy: DeploymentStrategy::PublicCloud,
        sites: vec![
            leased("aws", "eu-central-1", "Frankfurt", 2.0, 0),
            leased("aws", "us-east-1", "Ashburn", 4.0, 0),
            leased("aws", "us-west-2", "Portland", 2.0, 0),
            leased("aws", "ap-southeast-1", "Singapore", 0.7, 0),
            leased("azure", "westeurope", "Amsterdam", 1.2, 0),
            leased("azure", "germanywestcentral", "Frankfurt", 1.2, 0),
            leased("alicloud", "cn-shanghai", "Shanghai", 0.7, 0),
        ],
        slash24_target: 2929,
        domain_style: DomainStyle::TenantSld { sld: "iot.sap" },
        tenants: 120,
        sni_required: false,
        client_cert_ports: vec![],
        cert_exposed_frac: 1.0, // Fig. 3: Censys alone finds all SAP IPs
        anycast: false,
        churn_daily: 0.05,
        published: Published::Nothing,
        undocumented_frac: 0.0,
        shared_https: false,
        profile: TrafficProfile {
            popularity: 3.5,
            pattern: ActivityPattern::Daytime,
            sessions_per_day: 18.0,
            dn_bytes_median: 0.6e6,
            sigma: 1.1,
            down_up_ratio: 1.8,
            ports: vec![
                PortShare {
                    port: tcp(8883),
                    weight: 0.6,
                },
                PortShare {
                    port: tcp(443),
                    weight: 0.4,
                },
            ],
            heavy: None,
        },
    });

    // ----- Siemens Mindsphere: PR (AWS + Azure + Alibaba + own anycast),
    // 4 AS, 126 /24s (1 v6), 3 loc / 3 ctry + anycast.
    v.push(ProviderSpec {
        name: "siemens",
        display: "Siemens Mindsphere",
        strategy: DeploymentStrategy::PublicCloud,
        sites: vec![
            leased("aws", "eu-central-1", "Frankfurt", 3.0, 1),
            leased("azure", "eastus", "Ashburn", 1.5, 0),
            leased("alicloud", "cn-shanghai", "Shanghai", 1.0, 0),
            // A tiny own-AS anycast front (small enough that the
            // strategy classifier still calls the deployment PR, as the
            // paper does).
            own("anycast", "Frankfurt", 15629, 0.08, 0),
        ],
        slash24_target: 126,
        domain_style: DomainStyle::TenantRegion {
            sld: "mindsphere.io",
        },
        tenants: 60,
        sni_required: false,
        client_cert_ports: vec![],
        cert_exposed_frac: 0.75,
        anycast: true,
        churn_daily: 0.03,
        published: Published::FullIpList,
        undocumented_frac: 0.0,
        shared_https: false,
        profile: TrafficProfile {
            popularity: 2.5,
            pattern: ActivityPattern::Daytime,
            sessions_per_day: 20.0,
            dn_bytes_median: 0.8e6,
            sigma: 1.1,
            down_up_ratio: 1.2,
            // D4 in §5.5: substantial volume on TCP/61616 (ActiveMQ),
            // plus OPC-UA.
            ports: vec![
                PortShare {
                    port: tcp(8883),
                    weight: 0.30,
                },
                PortShare {
                    port: tcp(443),
                    weight: 0.25,
                },
                PortShare {
                    port: tcp(61616),
                    weight: 0.35,
                },
                PortShare {
                    port: tcp(4840),
                    weight: 0.10,
                },
            ],
            heavy: None,
        },
    });

    // ----- Sierra Wireless (AirVantage): PR (AWS), 4 AS, 7 /24s (2 v6),
    // 4 loc / 4 ctry.
    v.push(ProviderSpec {
        name: "sierra",
        display: "Sierra Wireless",
        strategy: DeploymentStrategy::PublicCloud,
        sites: vec![
            leased("aws", "us-east-1", "Ashburn", 1.0, 1),
            leased("aws", "ca-central-1", "Montreal", 1.0, 0),
            leased("aws", "eu-west-1", "Dublin", 1.5, 1),
            leased("aws", "ap-southeast-2", "Sydney", 0.5, 0),
        ],
        slash24_target: 7,
        domain_style: DomainStyle::Fixed {
            names: &[
                "na.airvantage.net",
                "ca.airvantage.net",
                "eu.airvantage.net",
                "ap.airvantage.net",
            ],
        },
        tenants: 0,
        // The AirVantage fronts are SNI-gated (one of Fig. 7's
        // "relies on SNI" providers alongside Google).
        sni_required: true,
        client_cert_ports: vec![],
        cert_exposed_frac: 0.05,
        anycast: false,
        churn_daily: 0.02,
        published: Published::Nothing,
        undocumented_frac: 0.0,
        shared_https: false,
        profile: TrafficProfile {
            popularity: 2.0,
            pattern: ActivityPattern::Constant,
            sessions_per_day: 15.0,
            dn_bytes_median: 0.15e6,
            sigma: 1.0,
            down_up_ratio: 0.4, // telemetry upload dominates
            ports: vec![
                PortShare {
                    port: tcp(8883),
                    weight: 0.40,
                },
                PortShare {
                    port: tcp(1883),
                    weight: 0.20,
                },
                PortShare {
                    port: tcp(443),
                    weight: 0.25,
                },
                PortShare {
                    port: udp(5686),
                    weight: 0.15,
                },
            ],
            heavy: None,
        },
    });

    // ----- Tencent IoT: DI, 5 AS, 47 /24s (2 v6), 5 loc / 4 ctry.
    v.push(ProviderSpec {
        name: "tencent",
        display: "Tencent IoT",
        strategy: DeploymentStrategy::Dedicated,
        sites: vec![
            own("ap-shanghai", "Shanghai", 132203, 2.0, 1),
            own("ap-guangzhou", "Guangzhou", 45090, 1.5, 1),
            own("ap-hongkong", "Hong Kong", 132591, 1.0, 0),
            own("ap-singapore", "Singapore", 133478, 0.8, 0),
            own("na-ashburn", "Ashburn", 137876, 0.8, 0),
        ],
        slash24_target: 47,
        domain_style: DomainStyle::TenantSld {
            sld: "tencentdevices.com",
        },
        tenants: 80,
        sni_required: false,
        client_cert_ports: vec![],
        cert_exposed_frac: 1.0, // Fig. 3: Censys alone finds all IPs
        anycast: false,
        churn_daily: 0.0,
        published: Published::Nothing,
        undocumented_frac: 0.0,
        shared_https: false,
        profile: TrafficProfile {
            popularity: 1.5,
            pattern: ActivityPattern::Evening,
            sessions_per_day: 12.0,
            dn_bytes_median: 0.2e6,
            sigma: 1.0,
            down_up_ratio: 0.6,
            ports: vec![
                PortShare {
                    port: tcp(8883),
                    weight: 0.5,
                },
                PortShare {
                    port: tcp(1883),
                    weight: 0.25,
                },
                PortShare {
                    port: tcp(443),
                    weight: 0.2,
                },
                PortShare {
                    port: udp(5684),
                    weight: 0.05,
                },
            ],
            heavy: None,
        },
    });

    v.sort_by_key(|p| p.name);
    assert_eq!(v.len(), PROVIDER_COUNT);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_providers_alphabetical() {
        let cat = catalog();
        assert_eq!(cat.len(), 16);
        let names: Vec<_> = cat.iter().map(|p| p.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn as_counts_match_table1() {
        let cat = catalog();
        let as_count = |name: &str| {
            let p = cat.iter().find(|p| p.name == name).unwrap();
            // Own ASes plus distinct cloud-region ASes are counted by the
            // build; here we check the own-AS part of the fiddly ones.
            p.own_asns().len()
        };
        assert_eq!(as_count("alibaba"), 2);
        assert_eq!(as_count("baidu"), 2);
        assert_eq!(as_count("google"), 1);
        assert_eq!(as_count("huawei"), 1);
        assert_eq!(as_count("ibm"), 2);
        assert_eq!(as_count("microsoft"), 1);
        assert_eq!(as_count("fujitsu"), 1);
        assert_eq!(as_count("tencent"), 5);
        assert_eq!(as_count("oracle"), 2); // + Akamai = 3 total
        assert_eq!(as_count("siemens"), 1); // + 3 clouds = 4 total
    }

    #[test]
    fn location_counts_match_table1() {
        let cat = catalog();
        let locs = |name: &str| cat.iter().find(|p| p.name == name).unwrap().sites.len();
        assert_eq!(locs("amazon"), 18);
        assert_eq!(locs("google"), 77);
        assert_eq!(locs("microsoft"), 39);
        assert_eq!(locs("alibaba"), 27);
        assert_eq!(locs("baidu"), 2);
        assert_eq!(locs("bosch"), 1);
        assert_eq!(locs("cisco"), 4);
        assert_eq!(locs("fujitsu"), 2);
        assert_eq!(locs("huawei"), 2);
        assert_eq!(locs("ibm"), 12);
        assert_eq!(locs("oracle"), 12); // 10 own + 2 Akamai edges
        assert_eq!(locs("ptc"), 10);
        assert_eq!(locs("sap"), 7);
        assert_eq!(locs("sierra"), 4);
        assert_eq!(locs("tencent"), 5);
        assert_eq!(locs("siemens"), 4); // 3 sites + anycast front
    }

    #[test]
    fn ipv6_offered_by_exactly_seven_providers() {
        let cat = catalog();
        let v6: Vec<_> = cat
            .iter()
            .filter(|p| p.has_ipv6())
            .map(|p| p.name)
            .collect();
        assert_eq!(
            v6,
            vec!["alibaba", "amazon", "baidu", "google", "siemens", "sierra", "tencent"]
        );
        let t = |name: &str| {
            cat.iter()
                .find(|p| p.name == name)
                .unwrap()
                .v6_slash56_target()
        };
        assert_eq!(t("amazon"), 20);
        assert_eq!(t("google"), 11);
        assert_eq!(t("alibaba"), 2);
        assert_eq!(t("microsoft"), 0);
    }

    #[test]
    fn strategies_match_table1() {
        let cat = catalog();
        let strat = |name: &str| cat.iter().find(|p| p.name == name).unwrap().strategy;
        let di = [
            "alibaba",
            "amazon",
            "baidu",
            "fujitsu",
            "google",
            "huawei",
            "ibm",
            "microsoft",
            "tencent",
        ];
        for p in di {
            assert_eq!(strat(p), DeploymentStrategy::Dedicated, "{p}");
        }
        let pr = ["bosch", "cisco", "ptc", "sap", "siemens", "sierra"];
        for p in pr {
            assert_eq!(strat(p), DeploymentStrategy::PublicCloud, "{p}");
        }
        assert_eq!(strat("oracle"), DeploymentStrategy::Mixed);
    }

    #[test]
    fn ground_truth_publishers() {
        let cat = catalog();
        let publ = |name: &str| cat.iter().find(|p| p.name == name).unwrap().published;
        assert_eq!(publ("cisco"), Published::FullIpList);
        assert_eq!(publ("siemens"), Published::FullIpList);
        assert_eq!(publ("microsoft"), Published::Prefixes);
        assert_eq!(publ("amazon"), Published::Nothing);
    }

    #[test]
    fn sni_and_client_cert_flags() {
        let cat = catalog();
        let get = |name: &str| cat.iter().find(|p| p.name == name).unwrap();
        assert!(get("google").sni_required);
        assert!(get("sierra").sni_required);
        assert!(!get("microsoft").sni_required);
        assert_eq!(get("amazon").client_cert_ports, vec![8883]);
    }

    #[test]
    fn port_mixes_are_normalized_enough() {
        for p in catalog() {
            let total: f64 = p.profile.ports.iter().map(|s| s.weight).sum();
            assert!((0.99..=1.01).contains(&total), "{}: {total}", p.name);
        }
    }

    #[test]
    fn site_weights_positive() {
        for p in catalog() {
            assert!(!p.sites.is_empty(), "{} has no sites", p.name);
            for s in &p.sites {
                assert!(s.weight > 0.0, "{} site {} weight", p.name, s.code);
            }
        }
    }

    #[test]
    fn heavy_tail_only_bosch() {
        for p in catalog() {
            if p.name == "bosch" {
                let h = p.profile.heavy.expect("bosch heavy tail");
                assert!((0.02..=0.10).contains(&h.fraction));
                assert_eq!(h.port, PortProto::tcp(5671));
            } else {
                assert!(p.profile.heavy.is_none(), "{}", p.name);
            }
        }
    }

    #[test]
    fn activity_patterns_shapes() {
        assert!(ActivityPattern::Evening.hour_weight(19) > ActivityPattern::Evening.hour_weight(3));
        assert!(
            ActivityPattern::Daytime.hour_weight(12) > ActivityPattern::Daytime.hour_weight(23)
        );
        assert_eq!(
            ActivityPattern::Constant.hour_weight(0),
            ActivityPattern::Constant.hour_weight(12)
        );
    }
}
