//! # iotmap-par — deterministic, std-only parallel execution
//!
//! A tiny fan-out engine for the workspace's hot loops: scoped worker
//! threads over [`std::thread::scope`], a `shard_*` API with **stable,
//! index-ordered merges**, and zero dependencies outside `std` and the
//! workspace's own `iotmap-obs`/`iotmap-nettypes`.
//!
//! ## Determinism contract
//!
//! Parallel output must be byte-identical to serial output at any thread
//! count. The engine guarantees its half of that contract:
//!
//! - Items are split into **contiguous shards** (ZMap-style sharded
//!   sweeping): shard `i` covers `items[offset .. offset + len]`, in the
//!   original order.
//! - Shard results are **merged in shard-index order**, regardless of
//!   which worker finishes first.
//! - A shard that needs randomness derives a sub-RNG from
//!   `(parent seed, shard index)` via [`ShardCtx::rng`] — never from
//!   wall-clock time or thread identity.
//! - Observability is preserved: when the calling thread has an
//!   `iotmap-obs` recorder installed, each worker runs under its own
//!   child [`iotmap_obs::Registry`] and the child reports are merged
//!   into the parent **in shard order** after the join, so `--trace`
//!   and `--metrics` see the same counters and span tree as a serial
//!   run (only the timings differ).
//!
//! The caller owns the other half: per-item work must not depend on
//! *which* shard an item lands in (shard boundaries move with the thread
//! count), and fold/merge steps must be associative with respect to
//! concatenation in item order. [`ShardCtx::rng`] is shard-indexed, so
//! code whose *output* consumes it is only stable at a fixed thread
//! count — fine for probe pacing, not for payload content.
//!
//! ## Thread-count configuration
//!
//! The thread count is **thread-local** and defaults to 1 (serial),
//! mirroring the thread-local recorder in `iotmap-obs`. `shard_*` calls
//! run inline on the calling thread until [`set_threads`] /
//! [`with_threads`] opts in. Worker threads start at the default of 1,
//! so nested `shard_*` calls inside a worker are naturally serial — no
//! thread explosion.
//!
//! ```
//! let squares = iotmap_par::with_threads(4, || {
//!     iotmap_par::shard_map(&[1u64, 2, 3, 4, 5], |_i, x| x * x)
//! });
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use iotmap_nettypes::SimRng;
use iotmap_obs::RunReport;
use std::cell::Cell;
use std::rc::Rc;

thread_local! {
    /// Worker-thread budget for `shard_*` calls issued from this thread.
    static THREADS: Cell<usize> = const { Cell::new(1) };
}

/// Current thread budget for this thread (≥ 1; 1 means serial/inline).
pub fn threads() -> usize {
    THREADS.with(|t| t.get())
}

/// Set the thread budget for `shard_*` calls issued from this thread.
///
/// `0` means "auto": [`std::thread::available_parallelism`], falling
/// back to 1 if the platform cannot report it.
pub fn set_threads(n: usize) {
    let n = if n == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        n
    };
    THREADS.with(|t| t.set(n.max(1)));
}

/// Run `f` with the thread budget set to `n` (`0` = auto), restoring the
/// previous budget afterwards — even if `f` panics.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREADS.with(|t| t.set(self.0));
        }
    }
    let guard = Restore(threads());
    set_threads(n);
    let out = f();
    drop(guard);
    out
}

/// Identity of one shard within a sharded call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCtx {
    /// Shard index, `0 .. shards`.
    pub index: usize,
    /// Total number of shards in this call.
    pub shards: usize,
    /// Index (into the original item slice) of this shard's first item.
    pub offset: usize,
}

impl ShardCtx {
    /// Deterministic sub-RNG for this shard: forked from the parent
    /// stream by shard index, never from time or thread identity.
    ///
    /// Output-relevant randomness drawn from this stream is stable only
    /// at a fixed thread count (shard boundaries move with `threads()`);
    /// use it for shard-scoped concerns such as probe pacing.
    pub fn rng(&self, parent: &SimRng) -> SimRng {
        parent.fork_idx(self.index as u64)
    }
}

/// Split `items` into contiguous shards, run `f` on each shard (in
/// parallel when the thread budget allows), and return the shard results
/// **in shard-index order**.
///
/// This is the primitive the other `shard_*` helpers build on. With a
/// budget of 1 — or when there is at most one item — `f` runs inline on
/// the calling thread as a single shard covering the whole slice.
pub fn shard_chunks<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(ShardCtx, &'a [T]) -> R + Sync,
{
    let budget = threads();
    if budget <= 1 || items.len() <= 1 {
        let ctx = ShardCtx {
            index: 0,
            shards: 1,
            offset: 0,
        };
        return vec![f(ctx, items)];
    }

    let shards = budget.min(items.len());
    let chunk = items.len().div_ceil(shards);
    let instrumented = iotmap_obs::enabled();

    let mut results: Vec<(R, Option<RunReport>)> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(index, slice)| {
                let ctx = ShardCtx {
                    index,
                    shards,
                    offset: index * chunk,
                };
                let f = &f;
                scope.spawn(move || run_shard(instrumented, move || f(ctx, slice)))
            })
            .collect();
        // Join in shard order so merges below are index-ordered no
        // matter which worker finished first.
        for handle in handles {
            match handle.join() {
                Ok(out) => results.push(out),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    results
        .into_iter()
        .map(|(out, report)| {
            if let Some(report) = report {
                iotmap_obs::merge_child_report(&report);
            }
            out
        })
        .collect()
}

/// Run the shard body, capturing its observability into a child registry
/// when the parent thread was instrumented.
fn run_shard<R>(instrumented: bool, body: impl FnOnce() -> R) -> (R, Option<RunReport>) {
    if !instrumented {
        return (body(), None);
    }
    let registry = Rc::new(iotmap_obs::Registry::new());
    iotmap_obs::install(registry.clone());
    let out = body();
    iotmap_obs::uninstall();
    (out, Some(registry.report()))
}

/// Apply `f` to every item and collect the outputs in item order.
///
/// `f` receives the item's index in the original slice, so labelling is
/// stable across thread counts.
pub fn shard_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &'a T) -> R + Sync,
{
    let per_shard = shard_chunks(items, |ctx, slice| {
        slice
            .iter()
            .enumerate()
            .map(|(i, item)| f(ctx.offset + i, item))
            .collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for shard in per_shard {
        out.extend(shard);
    }
    out
}

/// Apply `f` to every item **in place** and collect the outputs in item
/// order. Each worker owns a disjoint `&mut` chunk of the slice, so the
/// per-item work is the exact serial code — no merge step at all. This
/// is the shape the per-provider discovery fan-out uses.
pub fn shard_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let budget = threads();
    if budget <= 1 || items.len() <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let shards = budget.min(items.len());
    let chunk = items.len().div_ceil(shards);
    let instrumented = iotmap_obs::enabled();

    let mut per_shard: Vec<(Vec<R>, Option<RunReport>)> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(index, slice)| {
                let offset = index * chunk;
                let f = &f;
                scope.spawn(move || {
                    run_shard(instrumented, move || {
                        slice
                            .iter_mut()
                            .enumerate()
                            .map(|(i, item)| f(offset + i, item))
                            .collect::<Vec<R>>()
                    })
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(out) => per_shard.push(out),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    let mut out = Vec::with_capacity(items.len());
    for (shard, report) in per_shard {
        if let Some(report) = report {
            iotmap_obs::merge_child_report(&report);
        }
        out.extend(shard);
    }
    out
}

/// Sharded fold: each shard starts from `make(ctx)`, folds its items in
/// order with `fold`, and the per-shard accumulators are combined with
/// `merge` **in shard-index order**.
///
/// For the parallel result to match the serial one, `merge(a, b)` must
/// equal "continue folding b's items into a" — true for the append-only
/// and additive accumulators the scan stages use.
pub fn shard_fold<'a, T, A, FM, FF, FG>(items: &'a [T], make: FM, fold: FF, mut merge: FG) -> A
where
    T: Sync,
    A: Send,
    FM: Fn(ShardCtx) -> A + Sync,
    FF: Fn(&mut A, usize, &'a T) + Sync,
    FG: FnMut(&mut A, A),
{
    let mut shards = shard_chunks(items, |ctx, slice| {
        let mut acc = make(ctx);
        for (i, item) in slice.iter().enumerate() {
            fold(&mut acc, ctx.offset + i, item);
        }
        acc
    })
    .into_iter();
    let mut acc = shards
        .next()
        .expect("shard_chunks yields at least one shard");
    for shard in shards {
        merge(&mut acc, shard);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotmap_obs::Registry;

    #[test]
    fn default_budget_is_serial() {
        assert_eq!(threads(), 1);
    }

    #[test]
    fn with_threads_restores_budget() {
        set_threads(1);
        with_threads(3, || assert_eq!(threads(), 3));
        assert_eq!(threads(), 1);
        let caught = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(threads(), 1, "budget restored after panic");
    }

    #[test]
    fn zero_means_auto() {
        with_threads(0, || assert!(threads() >= 1));
    }

    #[test]
    fn shard_map_preserves_order_at_any_budget() {
        let items: Vec<u64> = (0..103).collect();
        let serial = shard_map(&items, |i, x| (i as u64) * 1000 + x * x);
        for budget in [2, 3, 4, 8, 64] {
            let parallel = with_threads(budget, || {
                shard_map(&items, |i, x| (i as u64) * 1000 + x * x)
            });
            assert_eq!(parallel, serial, "budget {budget}");
        }
    }

    #[test]
    fn shard_map_mut_mutates_in_place() {
        let mut serial: Vec<u64> = (0..57).collect();
        let serial_out = shard_map_mut(&mut serial, |i, x| {
            *x += i as u64;
            *x
        });
        for budget in [2, 4, 8] {
            let mut par: Vec<u64> = (0..57).collect();
            let par_out = with_threads(budget, || {
                shard_map_mut(&mut par, |i, x| {
                    *x += i as u64;
                    *x
                })
            });
            assert_eq!(par, serial, "budget {budget}");
            assert_eq!(par_out, serial_out, "budget {budget}");
        }
    }

    #[test]
    fn shard_fold_matches_serial() {
        let items: Vec<u64> = (1..=200).collect();
        let serial = shard_fold(
            &items,
            |_| (0u64, Vec::new()),
            |acc, i, x| {
                acc.0 += x;
                if x % 17 == 0 {
                    acc.1.push((i, *x));
                }
            },
            |a, b| {
                a.0 += b.0;
                a.1.extend(b.1);
            },
        );
        for budget in [2, 4, 8] {
            let parallel = with_threads(budget, || {
                shard_fold(
                    &items,
                    |_| (0u64, Vec::new()),
                    |acc, i, x| {
                        acc.0 += x;
                        if x % 17 == 0 {
                            acc.1.push((i, *x));
                        }
                    },
                    |a, b| {
                        a.0 += b.0;
                        a.1.extend(b.1);
                    },
                )
            });
            assert_eq!(parallel, serial, "budget {budget}");
        }
    }

    #[test]
    fn empty_and_single_item_slices_run_inline() {
        let empty: [u32; 0] = [];
        assert!(with_threads(8, || shard_map(&empty, |_, x| *x)).is_empty());
        let one = [7u32];
        assert_eq!(
            with_threads(8, || shard_map(&one, |i, x| (i, *x))),
            vec![(0, 7)]
        );
    }

    #[test]
    fn shard_ctx_covers_slice_contiguously() {
        let items: Vec<u32> = (0..37).collect();
        let ctxs = with_threads(5, || shard_chunks(&items, |ctx, slice| (ctx, slice.len())));
        assert_eq!(ctxs.len(), 5);
        let mut next = 0usize;
        for (i, (ctx, len)) in ctxs.iter().enumerate() {
            assert_eq!(ctx.index, i);
            assert_eq!(ctx.shards, 5);
            assert_eq!(ctx.offset, next);
            next += len;
        }
        assert_eq!(next, items.len());
    }

    #[test]
    fn shard_rng_is_deterministic_per_index() {
        let parent = SimRng::new(42);
        let ctx = ShardCtx {
            index: 3,
            shards: 8,
            offset: 30,
        };
        let mut a = ctx.rng(&parent);
        let mut b = ctx.rng(&parent);
        assert_eq!(a.next_u64(), b.next_u64());
        let other = ShardCtx { index: 4, ..ctx };
        let mut c = other.rng(&parent);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn worker_metrics_merge_into_parent_in_shard_order() {
        let registry = Rc::new(Registry::new());
        iotmap_obs::install(registry.clone());
        let items: Vec<u64> = (0..40).collect();
        let sum: Vec<u64> = with_threads(4, || {
            shard_map(&items, |_, x| {
                iotmap_obs::count!("par.test.items", 1);
                *x
            })
        });
        iotmap_obs::uninstall();
        assert_eq!(sum.len(), 40);
        let report = registry.report();
        assert_eq!(report.counters.get("par.test.items"), Some(&40));
    }

    #[test]
    fn worker_spans_attach_under_parent_span() {
        let registry = Rc::new(Registry::new());
        iotmap_obs::install(registry.clone());
        {
            let _outer = iotmap_obs::span!("par.test.outer");
            let items: Vec<u64> = (0..4).collect();
            with_threads(2, || {
                shard_map(&items, |i, _| {
                    let _inner = iotmap_obs::span!("par.test.item");
                    i
                })
            });
        }
        iotmap_obs::uninstall();
        let report = registry.report();
        assert_eq!(report.spans.len(), 1);
        let outer = &report.spans[0];
        assert_eq!(outer.name, "par.test.outer");
        assert_eq!(outer.children.len(), 4);
        assert!(outer.children.iter().all(|c| c.name == "par.test.item"));
    }

    #[test]
    fn uninstrumented_workers_skip_child_registries() {
        // No recorder installed: shard bodies run with obs disabled.
        let items: Vec<u64> = (0..8).collect();
        let flags = with_threads(4, || shard_map(&items, |_, _| iotmap_obs::enabled()));
        assert!(flags.iter().all(|f| !f));
    }

    #[test]
    fn nested_shard_calls_are_serial_inside_workers() {
        let items: Vec<u64> = (0..8).collect();
        let budgets = with_threads(4, || {
            shard_map(&items, |_, _| {
                // Worker thread-locals default to 1 ⇒ nested calls inline.
                threads()
            })
        });
        assert!(budgets.iter().all(|&b| b == 1));
    }
}
