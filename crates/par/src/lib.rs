//! # iotmap-par — deterministic, std-only parallel execution
//!
//! A tiny fan-out engine for the workspace's hot loops: scoped worker
//! threads over [`std::thread::scope`], a `shard_*` API with **stable,
//! index-ordered merges**, and zero dependencies outside `std` and the
//! workspace's own `iotmap-obs`/`iotmap-nettypes`.
//!
//! ## Determinism contract
//!
//! Parallel output must be byte-identical to serial output at any thread
//! count. The engine guarantees its half of that contract:
//!
//! - Items are split into **contiguous shards** (ZMap-style sharded
//!   sweeping): shard `i` covers `items[offset .. offset + len]`, in the
//!   original order.
//! - Shard results are **merged in shard-index order**, regardless of
//!   which worker finishes first.
//! - A shard that needs randomness derives a sub-RNG from
//!   `(parent seed, shard index)` via [`ShardCtx::rng`] — never from
//!   wall-clock time or thread identity.
//! - Observability is preserved: when the calling thread has an
//!   `iotmap-obs` recorder installed, each worker runs under its own
//!   child [`iotmap_obs::Registry`] and the child reports are merged
//!   into the parent **in shard order** after the join, so `--trace`
//!   and `--metrics` see the same counters and span tree as a serial
//!   run (only the timings differ).
//!
//! The caller owns the other half: per-item work must not depend on
//! *which* shard an item lands in (shard boundaries move with the thread
//! count), and fold/merge steps must be associative with respect to
//! concatenation in item order. [`ShardCtx::rng`] is shard-indexed, so
//! code whose *output* consumes it is only stable at a fixed thread
//! count — fine for probe pacing, not for payload content.
//!
//! ## Panic containment
//!
//! A worker panic no longer tears down the whole call: every worker runs
//! under `catch_unwind`, a poisoned shard is **quarantined** and retried
//! serially on the calling thread (in shard order, after all workers
//! joined), and only an over-budget quarantine — more than half the
//! shards poisoned — aborts the call by re-raising the first payload.
//! Shard bodies take `&[T]` and build fresh outputs, so a retry observes
//! exactly the state the first attempt did; a shard that panics *again*
//! during its serial retry is a genuine bug and propagates. The in-place
//! variant [`shard_map_mut`] can tear its chunk mid-mutation, so it only
//! quarantines crashes injected at shard entry (recognised by their
//! `iotmap_faults::crash::InjectedCrash` payload, raised before the
//! first item is touched) and propagates everything else.
//!
//! Containment is observable (`par.shard_panics`,
//! `par.shards_quarantined`, `par.quarantine_over_budget` counters) but
//! never changes results: a run with zero panics takes the exact same
//! code path and produces byte-identical output and obs reports.
//! Seeded crash injection (the `crash` fault family) is consulted at
//! shard entry when the calling thread armed it via
//! `iotmap_faults::crash::arm` — parallel fan-outs only; serial calls
//! take no shard rolls.
//!
//! ## Thread-count configuration
//!
//! The thread count is **thread-local** and defaults to 1 (serial),
//! mirroring the thread-local recorder in `iotmap-obs`. `shard_*` calls
//! run inline on the calling thread until [`set_threads`] /
//! [`with_threads`] opts in. Worker threads start at the default of 1,
//! so nested `shard_*` calls inside a worker are naturally serial — no
//! thread explosion.
//!
//! ```
//! let squares = iotmap_par::with_threads(4, || {
//!     iotmap_par::shard_map(&[1u64, 2, 3, 4, 5], |_i, x| x * x)
//! });
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use iotmap_faults::crash;
use iotmap_nettypes::SimRng;
use iotmap_obs::{RunReport, ShardAttribution};
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;

/// Quarantine budget for one sharded call: more than this many poisoned
/// shards aborts the call instead of retrying them serially (systematic
/// failure, not a stray fault).
fn quarantine_budget(shards: usize) -> usize {
    (shards / 2).max(1)
}

/// Shard-entry crash injection: roll the armed plan (if any) for this
/// shard and panic with a recognisable payload on a hit.
fn maybe_crash_shard(armed: &Option<crash::CrashCtx>, index: usize) {
    if let Some(ctx) = armed {
        if crash::shard_should_crash(ctx, index) {
            crash::trip(format!("shard:{}/{index}", ctx.stage_name));
        }
    }
}

thread_local! {
    /// Worker-thread budget for `shard_*` calls issued from this thread.
    static THREADS: Cell<usize> = const { Cell::new(1) };
}

/// Current thread budget for this thread (≥ 1; 1 means serial/inline).
pub fn threads() -> usize {
    THREADS.with(|t| t.get())
}

/// Set the thread budget for `shard_*` calls issued from this thread.
///
/// `0` means "auto": [`std::thread::available_parallelism`], falling
/// back to 1 if the platform cannot report it.
pub fn set_threads(n: usize) {
    let n = if n == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        n
    };
    THREADS.with(|t| t.set(n.max(1)));
}

/// Run `f` with the thread budget set to `n` (`0` = auto), restoring the
/// previous budget afterwards — even if `f` panics.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREADS.with(|t| t.set(self.0));
        }
    }
    let guard = Restore(threads());
    set_threads(n);
    let out = f();
    drop(guard);
    out
}

/// Identity of one shard within a sharded call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCtx {
    /// Shard index, `0 .. shards`.
    pub index: usize,
    /// Total number of shards in this call.
    pub shards: usize,
    /// Index (into the original item slice) of this shard's first item.
    pub offset: usize,
}

impl ShardCtx {
    /// Deterministic sub-RNG for this shard: forked from the parent
    /// stream by shard index, never from time or thread identity.
    ///
    /// Output-relevant randomness drawn from this stream is stable only
    /// at a fixed thread count (shard boundaries move with `threads()`);
    /// use it for shard-scoped concerns such as probe pacing.
    pub fn rng(&self, parent: &SimRng) -> SimRng {
        parent.fork_idx(self.index as u64)
    }
}

/// Split `items` into contiguous shards, run `f` on each shard (in
/// parallel when the thread budget allows), and return the shard results
/// **in shard-index order**.
///
/// This is the primitive the other `shard_*` helpers build on. With a
/// budget of 1 — or when there is at most one item — `f` runs inline on
/// the calling thread as a single shard covering the whole slice.
pub fn shard_chunks<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(ShardCtx, &'a [T]) -> R + Sync,
{
    let budget = threads();
    if budget <= 1 || items.len() <= 1 {
        let ctx = ShardCtx {
            index: 0,
            shards: 1,
            offset: 0,
        };
        return vec![f(ctx, items)];
    }

    let shards = budget.min(items.len());
    let chunk = items.len().div_ceil(shards);
    let instrumented = iotmap_obs::enabled();
    // Crash injection is armed via a thread-local, which workers cannot
    // see — capture the calling thread's context before fanning out.
    let armed = crash::armed();

    // `chunks()` can yield fewer pieces than `shards` when the ceiling
    // division rounds up; size the result table by the real count.
    let chunk_count = items.len().div_ceil(chunk);
    let mut results: Vec<Option<(R, Option<RunReport>)>> = Vec::new();
    results.resize_with(chunk_count, || None);
    let mut poisoned: Vec<(usize, Box<dyn Any + Send>)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(index, slice)| {
                let ctx = ShardCtx {
                    index,
                    shards,
                    offset: index * chunk,
                };
                let f = &f;
                let armed = armed.clone();
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(move || {
                        run_shard(instrumented, move || {
                            maybe_crash_shard(&armed, index);
                            f(ctx, slice)
                        })
                    }))
                })
            })
            .collect();
        // Join in shard order so merges below are index-ordered no
        // matter which worker finished first.
        for (index, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(out)) => results[index] = Some(out),
                // A worker panic was caught inside the worker; a join
                // error would mean it escaped the catch (impossible in
                // practice) — quarantine both the same way.
                Ok(Err(payload)) | Err(payload) => poisoned.push((index, payload)),
            }
        }
    });

    let mut quarantined: Vec<usize> = Vec::new();
    if !poisoned.is_empty() {
        iotmap_obs::count!("par.shard_panics", poisoned.len() as u64);
        if poisoned.len() > quarantine_budget(chunk_count) {
            iotmap_obs::count!("par.quarantine_over_budget", 1);
            let (_, payload) = poisoned.swap_remove(0);
            resume_unwind(payload);
        }
        // Serial quarantine retry, in shard order, injection disarmed:
        // `f` only reads its `&[T]` slice, so the retry observes exactly
        // what the poisoned worker did. A second panic here is a genuine
        // bug and propagates.
        for (index, _payload) in poisoned {
            iotmap_obs::count!("par.shards_quarantined", 1);
            quarantined.push(index);
            let offset = index * chunk;
            let slice = &items[offset..(offset + chunk).min(items.len())];
            let ctx = ShardCtx {
                index,
                shards,
                offset,
            };
            results[index] = Some(run_shard(instrumented, || f(ctx, slice)));
        }
    }

    results
        .into_iter()
        .enumerate()
        .map(|(index, entry)| {
            let (out, report) = entry.expect("every shard resolved or aborted");
            if let Some(report) = report {
                let offset = index * chunk;
                let attr = ShardAttribution {
                    shard: index as u64,
                    items: ((offset + chunk).min(items.len()) - offset) as u64,
                    quarantined: quarantined.contains(&index),
                };
                iotmap_obs::merge_child_report_attributed(&report, &attr);
            }
            out
        })
        .collect()
}

/// Run the shard body, capturing its observability into a child registry
/// when the parent thread was instrumented.
fn run_shard<R>(instrumented: bool, body: impl FnOnce() -> R) -> (R, Option<RunReport>) {
    if !instrumented {
        return (body(), None);
    }
    // Save and restore the caller's recorder: a quarantine retry runs on
    // the calling thread, where the parent registry is installed (fresh
    // worker threads have none, so this is a no-op for them).
    let previous = iotmap_obs::current_recorder();
    let registry = Rc::new(iotmap_obs::Registry::new());
    iotmap_obs::install(registry.clone());
    let out = body();
    match previous {
        Some(prev) => iotmap_obs::install(prev),
        None => iotmap_obs::uninstall(),
    }
    (out, Some(registry.report()))
}

/// Apply `f` to every item and collect the outputs in item order.
///
/// `f` receives the item's index in the original slice, so labelling is
/// stable across thread counts.
pub fn shard_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &'a T) -> R + Sync,
{
    let per_shard = shard_chunks(items, |ctx, slice| {
        slice
            .iter()
            .enumerate()
            .map(|(i, item)| f(ctx.offset + i, item))
            .collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for shard in per_shard {
        out.extend(shard);
    }
    out
}

/// Apply `f` to every item **in place** and collect the outputs in item
/// order. Each worker owns a disjoint `&mut` chunk of the slice, so the
/// per-item work is the exact serial code — no merge step at all. This
/// is the shape the per-provider discovery fan-out uses.
pub fn shard_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let budget = threads();
    if budget <= 1 || items.len() <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let shards = budget.min(items.len());
    let chunk = items.len().div_ceil(shards);
    let instrumented = iotmap_obs::enabled();
    let armed = crash::armed();

    let chunk_count = items.len().div_ceil(chunk);
    let mut per_shard: Vec<Option<(Vec<R>, Option<RunReport>)>> = Vec::new();
    per_shard.resize_with(chunk_count, || None);
    let mut poisoned: Vec<(usize, Box<dyn Any + Send>)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(index, slice)| {
                let offset = index * chunk;
                let f = &f;
                let armed = armed.clone();
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(move || {
                        run_shard(instrumented, move || {
                            // Injection fires before the first item is
                            // touched, so a quarantined injected crash
                            // leaves a pristine chunk behind.
                            maybe_crash_shard(&armed, index);
                            slice
                                .iter_mut()
                                .enumerate()
                                .map(|(i, item)| f(offset + i, item))
                                .collect::<Vec<R>>()
                        })
                    }))
                })
            })
            .collect();
        for (index, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(out)) => per_shard[index] = Some(out),
                Ok(Err(payload)) | Err(payload) => poisoned.push((index, payload)),
            }
        }
    });

    let mut quarantined: Vec<usize> = Vec::new();
    if !poisoned.is_empty() {
        iotmap_obs::count!("par.shard_panics", poisoned.len() as u64);
        // A genuine panic may have torn its `&mut` chunk mid-mutation,
        // so only entry-injected crashes (whose payload proves no item
        // was touched) are safe to quarantine and retry here.
        let real = poisoned
            .iter()
            .position(|(_, p)| p.downcast_ref::<crash::InjectedCrash>().is_none());
        if real.is_some() || poisoned.len() > quarantine_budget(chunk_count) {
            if real.is_none() {
                iotmap_obs::count!("par.quarantine_over_budget", 1);
            }
            let (_, payload) = poisoned.swap_remove(real.unwrap_or(0));
            resume_unwind(payload);
        }
        for (index, _payload) in poisoned {
            iotmap_obs::count!("par.shards_quarantined", 1);
            quarantined.push(index);
            let offset = index * chunk;
            let end = (offset + chunk).min(items.len());
            let slice = &mut items[offset..end];
            per_shard[index] = Some(run_shard(instrumented, || {
                slice
                    .iter_mut()
                    .enumerate()
                    .map(|(i, item)| f(offset + i, item))
                    .collect::<Vec<R>>()
            }));
        }
    }

    let total = items.len();
    let mut out = Vec::with_capacity(total);
    for (index, entry) in per_shard.into_iter().enumerate() {
        let (shard, report) = entry.expect("every shard resolved or aborted");
        if let Some(report) = report {
            let offset = index * chunk;
            let attr = ShardAttribution {
                shard: index as u64,
                items: ((offset + chunk).min(total) - offset) as u64,
                quarantined: quarantined.contains(&index),
            };
            iotmap_obs::merge_child_report_attributed(&report, &attr);
        }
        out.extend(shard);
    }
    out
}

/// Sharded fold: each shard starts from `make(ctx)`, folds its items in
/// order with `fold`, and the per-shard accumulators are combined with
/// `merge` **in shard-index order**.
///
/// For the parallel result to match the serial one, `merge(a, b)` must
/// equal "continue folding b's items into a" — true for the append-only
/// and additive accumulators the scan stages use.
pub fn shard_fold<'a, T, A, FM, FF, FG>(items: &'a [T], make: FM, fold: FF, mut merge: FG) -> A
where
    T: Sync,
    A: Send,
    FM: Fn(ShardCtx) -> A + Sync,
    FF: Fn(&mut A, usize, &'a T) + Sync,
    FG: FnMut(&mut A, A),
{
    let mut shards = shard_chunks(items, |ctx, slice| {
        let mut acc = make(ctx);
        for (i, item) in slice.iter().enumerate() {
            fold(&mut acc, ctx.offset + i, item);
        }
        acc
    })
    .into_iter();
    let mut acc = shards
        .next()
        .expect("shard_chunks yields at least one shard");
    for shard in shards {
        merge(&mut acc, shard);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotmap_obs::Registry;

    #[test]
    fn default_budget_is_serial() {
        assert_eq!(threads(), 1);
    }

    #[test]
    fn with_threads_restores_budget() {
        set_threads(1);
        with_threads(3, || assert_eq!(threads(), 3));
        assert_eq!(threads(), 1);
        let caught = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(threads(), 1, "budget restored after panic");
    }

    #[test]
    fn zero_means_auto() {
        with_threads(0, || assert!(threads() >= 1));
    }

    #[test]
    fn shard_map_preserves_order_at_any_budget() {
        let items: Vec<u64> = (0..103).collect();
        let serial = shard_map(&items, |i, x| (i as u64) * 1000 + x * x);
        for budget in [2, 3, 4, 8, 64] {
            let parallel = with_threads(budget, || {
                shard_map(&items, |i, x| (i as u64) * 1000 + x * x)
            });
            assert_eq!(parallel, serial, "budget {budget}");
        }
    }

    #[test]
    fn shard_map_mut_mutates_in_place() {
        let mut serial: Vec<u64> = (0..57).collect();
        let serial_out = shard_map_mut(&mut serial, |i, x| {
            *x += i as u64;
            *x
        });
        for budget in [2, 4, 8] {
            let mut par: Vec<u64> = (0..57).collect();
            let par_out = with_threads(budget, || {
                shard_map_mut(&mut par, |i, x| {
                    *x += i as u64;
                    *x
                })
            });
            assert_eq!(par, serial, "budget {budget}");
            assert_eq!(par_out, serial_out, "budget {budget}");
        }
    }

    #[test]
    fn shard_fold_matches_serial() {
        let items: Vec<u64> = (1..=200).collect();
        let serial = shard_fold(
            &items,
            |_| (0u64, Vec::new()),
            |acc, i, x| {
                acc.0 += x;
                if x % 17 == 0 {
                    acc.1.push((i, *x));
                }
            },
            |a, b| {
                a.0 += b.0;
                a.1.extend(b.1);
            },
        );
        for budget in [2, 4, 8] {
            let parallel = with_threads(budget, || {
                shard_fold(
                    &items,
                    |_| (0u64, Vec::new()),
                    |acc, i, x| {
                        acc.0 += x;
                        if x % 17 == 0 {
                            acc.1.push((i, *x));
                        }
                    },
                    |a, b| {
                        a.0 += b.0;
                        a.1.extend(b.1);
                    },
                )
            });
            assert_eq!(parallel, serial, "budget {budget}");
        }
    }

    #[test]
    fn empty_and_single_item_slices_run_inline() {
        let empty: [u32; 0] = [];
        assert!(with_threads(8, || shard_map(&empty, |_, x| *x)).is_empty());
        let one = [7u32];
        assert_eq!(
            with_threads(8, || shard_map(&one, |i, x| (i, *x))),
            vec![(0, 7)]
        );
    }

    #[test]
    fn shard_ctx_covers_slice_contiguously() {
        let items: Vec<u32> = (0..37).collect();
        let ctxs = with_threads(5, || shard_chunks(&items, |ctx, slice| (ctx, slice.len())));
        assert_eq!(ctxs.len(), 5);
        let mut next = 0usize;
        for (i, (ctx, len)) in ctxs.iter().enumerate() {
            assert_eq!(ctx.index, i);
            assert_eq!(ctx.shards, 5);
            assert_eq!(ctx.offset, next);
            next += len;
        }
        assert_eq!(next, items.len());
    }

    #[test]
    fn shard_rng_is_deterministic_per_index() {
        let parent = SimRng::new(42);
        let ctx = ShardCtx {
            index: 3,
            shards: 8,
            offset: 30,
        };
        let mut a = ctx.rng(&parent);
        let mut b = ctx.rng(&parent);
        assert_eq!(a.next_u64(), b.next_u64());
        let other = ShardCtx { index: 4, ..ctx };
        let mut c = other.rng(&parent);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn worker_metrics_merge_into_parent_in_shard_order() {
        let registry = Rc::new(Registry::new());
        iotmap_obs::install(registry.clone());
        let items: Vec<u64> = (0..40).collect();
        let sum: Vec<u64> = with_threads(4, || {
            shard_map(&items, |_, x| {
                iotmap_obs::count!("par.test.items", 1);
                *x
            })
        });
        iotmap_obs::uninstall();
        assert_eq!(sum.len(), 40);
        let report = registry.report();
        assert_eq!(report.counters.get("par.test.items"), Some(&40));
    }

    #[test]
    fn worker_spans_attach_under_parent_span() {
        let registry = Rc::new(Registry::new());
        iotmap_obs::install(registry.clone());
        {
            let _outer = iotmap_obs::span!("par.test.outer");
            let items: Vec<u64> = (0..4).collect();
            with_threads(2, || {
                shard_map(&items, |i, _| {
                    let _inner = iotmap_obs::span!("par.test.item");
                    i
                })
            });
        }
        iotmap_obs::uninstall();
        let report = registry.report();
        assert_eq!(report.spans.len(), 1);
        let outer = &report.spans[0];
        assert_eq!(outer.name, "par.test.outer");
        assert_eq!(outer.children.len(), 4);
        assert!(outer.children.iter().all(|c| c.name == "par.test.item"));
    }

    #[test]
    fn merged_worker_spans_carry_shard_attribution() {
        let registry = Rc::new(Registry::new());
        iotmap_obs::install(registry.clone());
        {
            let _outer = iotmap_obs::span!("par.test.outer");
            let items: Vec<u64> = (0..4).collect();
            with_threads(2, || {
                shard_map(&items, |i, _| {
                    let _inner = iotmap_obs::span!("par.test.item");
                    i
                })
            });
        }
        iotmap_obs::uninstall();
        let report = registry.report();
        let outer = &report.spans[0];
        // Two shards of two items each: child roots are stamped with the
        // shard that produced them, in shard order.
        let shards: Vec<u64> = outer
            .children
            .iter()
            .map(|c| c.meta_value("shard").expect("shard attribution"))
            .collect();
        assert_eq!(shards, vec![0, 0, 1, 1]);
        assert!(outer
            .children
            .iter()
            .all(|c| c.meta_value("items") == Some(2)));
        assert!(outer
            .children
            .iter()
            .all(|c| c.meta_value("quarantined").is_none()));
    }

    #[test]
    fn uninstrumented_workers_skip_child_registries() {
        // No recorder installed: shard bodies run with obs disabled.
        let items: Vec<u64> = (0..8).collect();
        let flags = with_threads(4, || shard_map(&items, |_, _| iotmap_obs::enabled()));
        assert!(flags.iter().all(|f| !f));
    }

    #[test]
    fn poisoned_shard_is_quarantined_and_retried() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let registry = Rc::new(Registry::new());
        iotmap_obs::install(registry.clone());
        let items: Vec<u64> = (0..40).collect();
        let tripped = AtomicBool::new(false);
        let out = with_threads(4, || {
            shard_map(&items, |i, x| {
                iotmap_obs::count!("par.test.seen", 1);
                // Poison one worker's first visit to item 25; the serial
                // quarantine retry then sees the flag already set.
                if i == 25 && !tripped.swap(true, Ordering::SeqCst) {
                    panic!("transient worker fault");
                }
                x * 2
            })
        });
        iotmap_obs::uninstall();
        let expected: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, expected, "quarantine reproduces the serial result");
        let report = registry.report();
        assert_eq!(report.counters.get("par.shard_panics"), Some(&1));
        assert_eq!(report.counters.get("par.shards_quarantined"), Some(&1));
        assert!(!report.counters.contains_key("par.quarantine_over_budget"));
        // Every item was eventually observed (the retried shard re-counts
        // its own items exactly once — its poisoned report was dropped).
        assert_eq!(report.counters.get("par.test.seen"), Some(&40));
    }

    #[test]
    fn over_budget_quarantine_aborts_the_call() {
        let items: Vec<u64> = (0..40).collect();
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                shard_map(&items, |_, x| {
                    // Every shard poisons itself, far over the budget of
                    // shards/2 — containment must give up.
                    panic!("systematic failure {x}");
                })
            })
        });
        assert!(caught.is_err());
        assert_eq!(threads(), 1, "budget restored after abort");
    }

    #[test]
    fn injected_shard_crashes_are_contained() {
        use iotmap_faults::{crash, CrashFaults};
        // Find a seed whose rolls poison at least one but no more than
        // budget (= 2 of 4) shards, so containment — not abort — runs.
        let faults = CrashFaults {
            shard_rate: 0.3,
            max_crashes: 1,
            ..CrashFaults::NONE
        };
        let seed = (0..200u64)
            .find(|&seed| {
                crash::arm(seed, &faults, "par.test", 0);
                let ctx = crash::armed().expect("armed");
                crash::disarm();
                let hits = (0..4)
                    .filter(|&s| crash::shard_should_crash(&ctx, s))
                    .count();
                (1..=2).contains(&hits)
            })
            .expect("some seed poisons 1-2 of 4 shards");

        let items: Vec<u64> = (0..40).collect();
        let serial = shard_map(&items, |i, x| (i as u64) ^ (x * 3));
        crash::arm(seed, &faults, "par.test", 0);
        let parallel = with_threads(4, || shard_map(&items, |i, x| (i as u64) ^ (x * 3)));
        crash::disarm();
        assert_eq!(parallel, serial, "contained crashes never change output");

        // The in-place variant quarantines entry-injected crashes too.
        let mut serial_items: Vec<u64> = (0..40).collect();
        shard_map_mut(&mut serial_items, |i, x| *x += i as u64);
        let mut par_items: Vec<u64> = (0..40).collect();
        crash::arm(seed, &faults, "par.test", 0);
        with_threads(4, || shard_map_mut(&mut par_items, |i, x| *x += i as u64));
        crash::disarm();
        assert_eq!(par_items, serial_items);
    }

    #[test]
    fn genuine_panics_in_mut_shards_propagate() {
        // shard_map_mut cannot prove a real panic left its chunk intact,
        // so it must not retry — the panic propagates to the caller.
        let mut items: Vec<u64> = (0..40).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                shard_map_mut(&mut items, |i, x| {
                    *x += 1;
                    if i == 25 {
                        panic!("torn mutation");
                    }
                })
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn nested_shard_calls_are_serial_inside_workers() {
        let items: Vec<u64> = (0..8).collect();
        let budgets = with_threads(4, || {
            shard_map(&items, |_, _| {
                // Worker thread-locals default to 1 ⇒ nested calls inline.
                threads()
            })
        });
        assert!(budgets.iter().all(|&b| b == 1));
    }
}
